//! Hoisting and sinking (paper Figure 7(c)): indirect loads move into
//! `packed_load` ops *before* the loop, indirect stores/RMWs sink into
//! `packed_store`/`packed_rmw` ops *after* it. The residual loop exchanges
//! data with the packed ops through per-iteration buffers (the paper's
//! `enqueue`/`dequeue`).

use crate::detect::{inline_temps, is_indirect_index};
use crate::ir::{ArrayId, Expr, Loop, RmwOp, Stmt, VarId};
use crate::legality::{check, Illegal};

/// An index expression as a function of the loop induction variable.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSpec {
    /// The induction variable the expression is parameterized over.
    pub iv: VarId,
    /// The index expression (may contain loads: that is the point).
    pub expr: Expr,
}

/// A bulk memory operation hoisted out of (or sunk below) the loop.
#[derive(Debug, Clone, PartialEq)]
pub enum PackedOp {
    /// Gather `array[index(i)]` for every iteration into `buf`.
    Load {
        /// Gathered array.
        array: ArrayId,
        /// Per-iteration index.
        index: IndexSpec,
        /// Destination buffer.
        buf: usize,
    },
    /// Scatter `buf` values to `array[index(i)]`, gated by `cond_buf`.
    Store {
        /// Target array.
        array: ArrayId,
        /// Per-iteration index.
        index: IndexSpec,
        /// Value buffer (filled by the residual loop).
        value_buf: usize,
        /// Optional 0/1 gate buffer.
        cond_buf: Option<usize>,
    },
    /// Read-modify-write `array[index(i)] op= buf[i]`, gated by `cond_buf`.
    Rmw {
        /// Target array.
        array: ArrayId,
        /// Per-iteration index.
        index: IndexSpec,
        /// Update operator.
        op: RmwOp,
        /// Value buffer.
        value_buf: usize,
        /// Optional gate buffer.
        cond_buf: Option<usize>,
    },
    /// Evaluate a per-iteration scalar expression into a buffer (address
    /// calculations and conditions offloaded to the accelerator ALU).
    EvalToBuf {
        /// Expression of `iv`.
        expr: Expr,
        /// Induction variable.
        iv: VarId,
        /// Destination buffer.
        buf: usize,
    },
}

/// The result of hoisting one loop.
#[derive(Debug, Clone)]
pub struct TransformedLoop {
    /// Original induction variable.
    pub iv: VarId,
    /// Fresh variable holding `i - tile_lo` (buffer offset).
    pub tile_offset_var: VarId,
    /// Number of buffers allocated.
    pub num_bufs: usize,
    /// Packed loads executed before the residual loop.
    pub prologue: Vec<PackedOp>,
    /// The residual loop body (buffer reads/writes instead of indirect
    /// accesses).
    pub body: Vec<Stmt>,
    /// Packed stores/RMWs executed after the residual loop.
    pub epilogue: Vec<PackedOp>,
}

struct Hoister {
    iv: VarId,
    off: VarId,
    prologue: Vec<PackedOp>,
    epilogue: Vec<PackedOp>,
    /// Dedup of hoisted loads: (array, index expr) → buffer.
    load_bufs: Vec<(ArrayId, Expr, usize)>,
    num_bufs: usize,
}

impl Hoister {
    fn alloc_buf(&mut self) -> usize {
        self.num_bufs += 1;
        self.num_bufs - 1
    }

    /// Rewrites an expression, hoisting indirect loads into packed loads.
    fn rewrite(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Load(a, idx) if is_indirect_index(idx, self.iv) => {
                let idx_rewritten = (**idx).clone();
                // Reuse an existing packed load for the same (array, index).
                if let Some((_, _, buf)) = self
                    .load_bufs
                    .iter()
                    .find(|(arr, ix, _)| arr == a && *ix == idx_rewritten)
                {
                    return Expr::BufRead(*buf, Box::new(Expr::Var(self.off)));
                }
                let buf = self.alloc_buf();
                self.load_bufs.push((*a, idx_rewritten.clone(), buf));
                self.prologue.push(PackedOp::Load {
                    array: *a,
                    index: IndexSpec {
                        iv: self.iv,
                        expr: idx_rewritten,
                    },
                    buf,
                });
                Expr::BufRead(buf, Box::new(Expr::Var(self.off)))
            }
            Expr::Load(a, idx) => Expr::Load(*a, Box::new(self.rewrite(idx))),
            Expr::Bin(op, x, y) => {
                Expr::Bin(*op, Box::new(self.rewrite(x)), Box::new(self.rewrite(y)))
            }
            other => other.clone(),
        }
    }

    /// Transforms statements; `cond_buf` is the gate buffer of the enclosing
    /// `If`, when inside one.
    fn stmts(&mut self, body: &[Stmt], cond_buf: Option<usize>) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in body {
            match s {
                Stmt::Store(a, idx, v) if is_indirect_index(idx, self.iv) => {
                    let v2 = self.rewrite(v);
                    let value_buf = self.alloc_buf();
                    out.push(Stmt::BufWrite(value_buf, Expr::Var(self.off), v2));
                    self.epilogue.push(PackedOp::Store {
                        array: *a,
                        index: IndexSpec {
                            iv: self.iv,
                            expr: idx.clone(),
                        },
                        value_buf,
                        cond_buf,
                    });
                }
                Stmt::Rmw(a, idx, op, v) if is_indirect_index(idx, self.iv) => {
                    let v2 = self.rewrite(v);
                    let value_buf = self.alloc_buf();
                    out.push(Stmt::BufWrite(value_buf, Expr::Var(self.off), v2));
                    self.epilogue.push(PackedOp::Rmw {
                        array: *a,
                        index: IndexSpec {
                            iv: self.iv,
                            expr: idx.clone(),
                        },
                        op: *op,
                        value_buf,
                        cond_buf,
                    });
                }
                Stmt::Store(a, idx, v) => {
                    out.push(Stmt::Store(*a, self.rewrite(idx), self.rewrite(v)));
                }
                Stmt::Rmw(a, idx, op, v) => {
                    out.push(Stmt::Rmw(*a, self.rewrite(idx), *op, self.rewrite(v)));
                }
                Stmt::Assign(v, e) => out.push(Stmt::Assign(*v, self.rewrite(e))),
                Stmt::If(c, inner) => {
                    let c2 = self.rewrite(c);
                    // Record the gate for sunk stores inside this If. Nested
                    // Ifs with sinks would need conjunction; inner sinks
                    // under a second gate are left in place (conservative).
                    let gate = if cond_buf.is_none() {
                        let cb = self.alloc_buf();
                        out.push(Stmt::BufWrite(cb, Expr::Var(self.off), c2.clone()));
                        Some(cb)
                    } else {
                        None
                    };
                    let inner2 = match gate {
                        Some(cb) => self.stmts(inner, Some(cb)),
                        // Conservative: no further sinking under nested gates.
                        None => inner.to_vec(),
                    };
                    out.push(Stmt::If(c2, inner2));
                }
                Stmt::For(inner) => {
                    // Nested loops are left untouched (range loops take the
                    // dedicated RNG path in `lower`).
                    out.push(Stmt::For(inner.clone()));
                }
                Stmt::BufWrite(b, i, v) => {
                    out.push(Stmt::BufWrite(*b, self.rewrite(i), self.rewrite(v)));
                }
            }
        }
        out
    }
}

/// Hoists a legal loop. See the module docs.
///
/// # Errors
/// Propagates [`Illegal`] from the legality check.
pub fn hoist(l: &Loop, fresh: &mut dyn FnMut() -> VarId) -> Result<TransformedLoop, Illegal> {
    check(l)?;
    let body = inline_temps(&l.body);
    let off = fresh();
    let mut h = Hoister {
        iv: l.iv,
        off,
        prologue: Vec::new(),
        epilogue: Vec::new(),
        load_bufs: Vec::new(),
        num_bufs: 0,
    };
    let residual = h.stmts(&body, None);
    Ok(TransformedLoop {
        iv: l.iv,
        tile_offset_var: off,
        num_bufs: h.num_bufs,
        prologue: h.prologue,
        body: residual,
        epilogue: h.epilogue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Env;
    use crate::ir::{BinOp, Program};
    use crate::tile::static_tiles;

    /// Runs original vs transformed (tile by tile) and compares arrays.
    fn check_equivalence(p: &Program, l: &Loop, tile: i64) {
        let mut p2 = p.clone();
        let t = hoist(l, &mut || p2.var()).expect("legal loop");
        let mut env1 = Env::for_program(&p2);
        // Deterministic non-trivial contents.
        for (ai, arr) in env1.arrays.iter_mut().enumerate() {
            for (i, v) in arr.iter_mut().enumerate() {
                *v = ((i * 7 + ai * 13) % 11) as i64;
            }
        }
        let mut env2 = env1.clone();
        env1.exec(&Stmt::For(l.clone()));
        let (Expr::Const(lo), Expr::Const(hi)) = (&l.lo, &l.hi) else {
            panic!("test loops use constant bounds");
        };
        for (tl, th) in static_tiles(*lo, *hi, tile) {
            env2.exec_transformed_tile(&t, tl, th);
        }
        assert_eq!(env1.arrays, env2.arrays);
    }

    fn index_arrays_in_bounds(env_len: usize, idx: &mut [i64]) {
        for (i, v) in idx.iter_mut().enumerate() {
            *v = ((i * 5 + 3) % env_len) as i64;
        }
    }

    #[test]
    fn gather_hoists_one_packed_load() {
        let mut p = Program::new();
        let a = p.array("A", 11);
        let b = p.array("B", 16);
        let c = p.array("C", 16);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(16),
            body: vec![Stmt::Store(
                c,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::Var(i))),
            )],
        };
        let mut p2 = p.clone();
        let t = hoist(&l, &mut || p2.var()).unwrap();
        assert_eq!(t.prologue.len(), 1);
        assert!(t.epilogue.is_empty());
        assert!(matches!(t.prologue[0], PackedOp::Load { array, .. } if array == a));
        let _ = index_arrays_in_bounds;
        check_equivalence(&p, &l, 4);
    }

    #[test]
    fn scatter_sinks_packed_store() {
        // A[B[i]] = C[i] * 2
        let mut p = Program::new();
        let a = p.array("A", 11);
        let b = p.array("B", 16);
        let c = p.array("C", 16);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(16),
            body: vec![Stmt::Store(
                a,
                Expr::load(b, Expr::Var(i)),
                Expr::bin(BinOp::Mul, Expr::load(c, Expr::Var(i)), Expr::Const(2)),
            )],
        };
        let mut p2 = p.clone();
        let t = hoist(&l, &mut || p2.var()).unwrap();
        assert_eq!(t.epilogue.len(), 1);
        assert!(matches!(
            t.epilogue[0],
            PackedOp::Store { cond_buf: None, .. }
        ));
        check_equivalence(&p, &l, 8);
    }

    #[test]
    fn conditional_rmw_sinks_with_gate() {
        // if (D[i] >= 5) A[B[i]] += C[i]
        let mut p = Program::new();
        let a = p.array("A", 11);
        let b = p.array("B", 16);
        let c = p.array("C", 16);
        let d = p.array("D", 16);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(16),
            body: vec![Stmt::If(
                Expr::bin(BinOp::Ge, Expr::load(d, Expr::Var(i)), Expr::Const(5)),
                vec![Stmt::Rmw(
                    a,
                    Expr::load(b, Expr::Var(i)),
                    RmwOp::Add,
                    Expr::load(c, Expr::Var(i)),
                )],
            )],
        };
        let mut p2 = p.clone();
        let t = hoist(&l, &mut || p2.var()).unwrap();
        assert!(matches!(
            t.epilogue.first(),
            Some(PackedOp::Rmw {
                cond_buf: Some(_),
                ..
            })
        ));
        check_equivalence(&p, &l, 4);
    }

    #[test]
    fn duplicate_loads_share_one_buffer() {
        // C[i] = A[B[i]] + A[B[i]]
        let mut p = Program::new();
        let a = p.array("A", 11);
        let b = p.array("B", 16);
        let c = p.array("C", 16);
        let i = p.var();
        let gathered = Expr::load(a, Expr::load(b, Expr::Var(i)));
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(16),
            body: vec![Stmt::Store(
                c,
                Expr::Var(i),
                Expr::bin(BinOp::Add, gathered.clone(), gathered),
            )],
        };
        let mut p2 = p.clone();
        let t = hoist(&l, &mut || p2.var()).unwrap();
        assert_eq!(t.prologue.len(), 1, "identical loads must share a buffer");
        check_equivalence(&p, &l, 16);
    }

    #[test]
    fn illegal_loop_propagates_error() {
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 8);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(8),
            body: vec![Stmt::Store(
                a,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::Var(i))),
            )],
        };
        assert!(hoist(&l, &mut || p.var()).is_err());
    }

    #[test]
    fn two_level_indirection_round_trips() {
        // S[i] = A[B[C[i]]]
        let mut p = Program::new();
        let a = p.array("A", 11);
        let b = p.array("B", 11);
        let c = p.array("C", 16);
        let s = p.array("S", 16);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(16),
            body: vec![Stmt::Store(
                s,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::load(c, Expr::Var(i)))),
            )],
        };
        check_equivalence(&p, &l, 8);
    }
}
