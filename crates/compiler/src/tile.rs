//! Loop tiling: expose tile-sized bulk operations (paper Figure 7(b)).

use crate::ir::{BinOp, Expr, Loop, Stmt, VarId};

/// Tiles a counted loop: `for i in lo..hi { B }` becomes
/// `for t in 0..ceil((hi-lo)/T) { for i in lo+t*T..min(lo+(t+1)*T, hi) { B } }`.
///
/// `fresh` must hand out unused variable ids (the outer induction variable
/// and the bound temporaries).
pub fn tile_loop(l: &Loop, tile: i64, fresh: &mut impl FnMut() -> VarId) -> Stmt {
    assert!(tile > 0, "tile size must be positive");
    let t = fresh();
    let lo = l.lo.clone();
    let hi = l.hi.clone();
    // trip = hi - lo; tiles = (trip + T - 1) / T is awkward without division
    // in the IR, so iterate t over lo..hi step T via: outer i0 = lo + t*T
    // encoded as for t in 0..N where N chosen by the caller — instead we
    // keep it simple and exact with a while-like structure:
    //   for t in 0 .. ceil: inner for i in (lo + t*T) .. min(lo + (t+1)*T, hi)
    // The outer bound uses the IR's arithmetic: ceil is computed by the
    // caller only when bounds are constant; for symbolic bounds we emit an
    // over-approximating outer loop guarded by the inner `min`.
    let inner_lo = Expr::bin(
        BinOp::Add,
        lo.clone(),
        Expr::bin(BinOp::Mul, Expr::Var(t), Expr::Const(tile)),
    );
    // min(a, hi) via select: a + (hi - a) * (hi < a)  — avoid: emit inner
    // upper bound as expression `min` is not in the IR, so encode with a
    // conditional assignment into a temp.
    let bound = fresh();
    let naive_hi = Expr::bin(BinOp::Add, inner_lo.clone(), Expr::Const(tile));
    let inner = Loop {
        iv: l.iv,
        lo: inner_lo,
        hi: Expr::Var(bound),
        body: l.body.clone(),
    };
    let outer_trips = Expr::Var(fresh()); // filled by the caller for symbolic bounds
    let _ = outer_trips;
    Stmt::For(Loop {
        iv: t,
        lo: Expr::Const(0),
        // ceil((hi-lo)/T): only computable for constant bounds; the caller
        // uses `static_tiles` for execution. For the IR form we conservatively
        // iterate (hi - lo) times capped by the empty inner loop; to keep the
        // IR executable we compute trips for constant bounds here.
        hi: match (&l.lo, &l.hi) {
            (Expr::Const(a), Expr::Const(b)) => Expr::Const((b - a + tile - 1) / tile),
            _ => Expr::bin(BinOp::Sub, hi.clone(), lo.clone()),
        },
        body: vec![
            // bound = min(lo + (t+1)*T, hi): bound = naive; if hi < naive { bound = hi }
            Stmt::Assign(bound, naive_hi.clone()),
            Stmt::If(
                Expr::bin(BinOp::Lt, hi.clone(), naive_hi),
                vec![Stmt::Assign(bound, hi)],
            ),
            Stmt::For(inner),
        ],
    })
}

/// Static tile boundaries for constant loop bounds: `[lo, hi)` split into
/// `(lo_k, hi_k)` chunks of at most `tile` iterations.
pub fn static_tiles(lo: i64, hi: i64, tile: i64) -> Vec<(i64, i64)> {
    assert!(tile > 0);
    let mut out = Vec::new();
    let mut cur = lo;
    while cur < hi {
        out.push((cur, (cur + tile).min(hi)));
        cur += tile;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Env;
    use crate::ir::Program;

    #[test]
    fn static_tiles_cover_range() {
        assert_eq!(static_tiles(0, 10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(static_tiles(5, 5, 4), vec![]);
        assert_eq!(static_tiles(0, 4, 4), vec![(0, 4)]);
    }

    #[test]
    fn tiled_loop_preserves_semantics() {
        // for i in 0..10 { C[i] = A[i] + 1 }
        let mut p = Program::new();
        let a = p.array("A", 10);
        let c = p.array("C", 10);
        let i = p.var();
        let body = vec![Stmt::Store(
            c,
            Expr::Var(i),
            Expr::bin(BinOp::Add, Expr::load(a, Expr::Var(i)), Expr::Const(1)),
        )];
        let orig = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(10),
            body: body.clone(),
        };
        let mut p2 = p.clone();
        let tiled = tile_loop(&orig, 4, &mut || p2.var());

        let mut env1 = Env::for_program(&p2);
        env1.arrays[a] = (0..10).collect();
        let mut env2 = env1.clone();
        env1.exec(&Stmt::For(orig));
        env2.exec(&tiled);
        assert_eq!(env1.arrays[c], env2.arrays[c]);
        assert_eq!(env1.arrays[c][9], 10);
    }
}
