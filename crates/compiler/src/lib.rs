//! The DX100 compiler (paper Section 4.2), rebuilt on a compact loop-level
//! IR instead of MLIR/Polygeist.
//!
//! The paper's pipeline is reproduced stage for stage (Figure 7):
//!
//! 1. **Loop IR** ([`ir`]) — the target-agnostic representation a
//!    Polygeist-style frontend would produce from C: nested counted loops,
//!    array loads/stores/RMWs, scalar arithmetic, conditionals.
//! 2. **Tiling** ([`tile`]) — split a loop into tile-sized chunks to expose
//!    bulk operations.
//! 3. **Detection** ([`detect`]) — a use-def DFS from loop induction
//!    variables identifies indirect access chains (`A[B[i]]`,
//!    `A[B[C[i]]]`, `A[f(C[i])]`).
//! 4. **Legality** ([`legality`]) — alias and loop-carried-dependence
//!    checks; e.g. the Gauss–Seidel pattern (loads and stores to the same
//!    array) is rejected, exactly as Section 4.2 describes.
//! 5. **Hoisting** ([`hoist`]) — indirect loads are hoisted into
//!    `packed_load` ops before the loop, stores/RMWs sink into
//!    `packed_store`/`packed_rmw` after it; the residual loop reads/writes
//!    packed buffers.
//! 6. **Lowering** ([`lower`]) — packed ops become DX100 API call
//!    sequences (`SLD`/`ILD`/`IST`/`IRMW`/`ALUS`/`RNG`), executable against
//!    the functional accelerator for verification.
//!
//! # Example: the paper's Figure 7 gather
//!
//! ```
//! use dx100_compiler::ir::{Expr, Program, Stmt};
//! use dx100_compiler::pipeline::compile_loop;
//!
//! // for i in 0..n { C[i] = A[B[i]]; }
//! let mut p = Program::new();
//! let a = p.array("A", 64);
//! let b = p.array("B", 16);
//! let c = p.array("C", 16);
//! let i = p.var();
//! p.body.push(Stmt::for_loop(
//!     i,
//!     Expr::Const(0),
//!     Expr::Const(16),
//!     vec![Stmt::Store(
//!         c,
//!         Expr::Var(i),
//!         Expr::load(a, Expr::load(b, Expr::Var(i))),
//!     )],
//! ));
//! let compiled = compile_loop(&p, 8).expect("legal and profitable");
//! // 16 iterations in 8-element tiles; one packed load was hoisted and
//! // lowered to SLD (indices) + ILD (gather).
//! assert_eq!(compiled.tiles.len(), 2);
//! assert_eq!(compiled.transformed.prologue.len(), 1);
//! ```

pub mod detect;
pub mod hoist;
pub mod interp;
pub mod ir;
pub mod legality;
pub mod lower;
pub mod pipeline;
pub mod tile;
