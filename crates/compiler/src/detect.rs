//! Indirect-access detection: the use-def DFS of Section 4.2.
//!
//! Starting from the loop induction variable, the pass walks expression
//! trees (use-def chains in SSA terms; our IR inlines single-assignment
//! temporaries first) and flags every array access whose index itself
//! contains a load — `A[B[i]]`, `A[B[C[i]]]`, `A[(C[i] & m) >> s]`.

use crate::ir::{ArrayId, Expr, Loop, Stmt, VarId};

/// How an indirect access is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Appears as a load in an expression.
    Load,
    /// Target of a `Store`.
    Store,
    /// Target of an `Rmw`.
    Rmw,
}

/// One detected indirect access.
#[derive(Debug, Clone)]
pub struct IndirectAccess {
    /// How the access is used.
    pub kind: AccessKind,
    /// The accessed array (`A` in `A[B[i]]`).
    pub array: ArrayId,
    /// The full index expression (contains at least one `Load`).
    pub index: Expr,
    /// Levels of indirection (1 for `A[B[i]]`, 2 for `A[B[C[i]]]`).
    pub depth: usize,
}

/// Depth of load nesting within an expression (0 = no loads).
pub fn load_depth(e: &Expr) -> usize {
    match e {
        Expr::Const(_) | Expr::Var(_) => 0,
        Expr::Load(_, i) => 1 + load_depth(i),
        Expr::Bin(_, a, b) => load_depth(a).max(load_depth(b)),
        Expr::BufRead(_, i) => load_depth(i),
    }
}

/// Whether an index expression makes the access *indirect*: it contains a
/// load that (transitively) depends on the induction variable.
pub fn is_indirect_index(index: &Expr, iv: VarId) -> bool {
    fn has_iv_load(e: &Expr, iv: VarId) -> bool {
        match e {
            Expr::Load(_, i) => i.uses_var(iv) || has_iv_load(i, iv),
            Expr::Bin(_, a, b) => has_iv_load(a, iv) || has_iv_load(b, iv),
            Expr::BufRead(_, i) => has_iv_load(i, iv),
            _ => false,
        }
    }
    has_iv_load(index, iv)
}

/// Inlines single-assignment temporaries so use-def chains become explicit
/// expression trees. A temporary qualifies if it is assigned exactly once in
/// the body and only read *after* that assignment (no loop-carried use).
pub fn inline_temps(body: &[Stmt]) -> Vec<Stmt> {
    // Map of var → defining expression, built in order; substitution is
    // applied eagerly to later statements.
    let mut defs: Vec<(VarId, Expr)> = Vec::new();
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::Assign(v, e) => {
                let inlined = subst_expr(e, &defs);
                // Redefinition invalidates the earlier inline (conservative:
                // keep the latest).
                defs.retain(|(dv, _)| dv != v);
                defs.push((*v, inlined));
            }
            other => out.push(subst_stmt(other, &defs)),
        }
    }
    out
}

fn subst_expr(e: &Expr, defs: &[(VarId, Expr)]) -> Expr {
    match e {
        Expr::Var(v) => defs
            .iter()
            .rev()
            .find(|(dv, _)| dv == v)
            .map(|(_, de)| de.clone())
            .unwrap_or(Expr::Var(*v)),
        Expr::Const(c) => Expr::Const(*c),
        Expr::Load(a, i) => Expr::Load(*a, Box::new(subst_expr(i, defs))),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(subst_expr(a, defs)),
            Box::new(subst_expr(b, defs)),
        ),
        Expr::BufRead(b, i) => Expr::BufRead(*b, Box::new(subst_expr(i, defs))),
    }
}

fn subst_stmt(s: &Stmt, defs: &[(VarId, Expr)]) -> Stmt {
    match s {
        Stmt::Store(a, i, v) => Stmt::Store(*a, subst_expr(i, defs), subst_expr(v, defs)),
        Stmt::Rmw(a, i, op, v) => Stmt::Rmw(*a, subst_expr(i, defs), *op, subst_expr(v, defs)),
        Stmt::Assign(v, e) => Stmt::Assign(*v, subst_expr(e, defs)),
        Stmt::If(c, body) => Stmt::If(
            subst_expr(c, defs),
            body.iter().map(|s| subst_stmt(s, defs)).collect(),
        ),
        Stmt::For(l) => Stmt::For(Loop {
            iv: l.iv,
            lo: subst_expr(&l.lo, defs),
            hi: subst_expr(&l.hi, defs),
            body: l.body.iter().map(|s| subst_stmt(s, defs)).collect(),
        }),
        Stmt::BufWrite(b, off, v) => Stmt::BufWrite(*b, subst_expr(off, defs), subst_expr(v, defs)),
    }
}

/// Detects every indirect access in a loop (after temp inlining).
pub fn detect(l: &Loop) -> Vec<IndirectAccess> {
    let body = inline_temps(&l.body);
    let mut found = Vec::new();
    for s in &body {
        detect_stmt(s, l.iv, &mut found);
    }
    found
}

fn detect_stmt(s: &Stmt, iv: VarId, out: &mut Vec<IndirectAccess>) {
    match s {
        Stmt::Store(a, i, v) => {
            if is_indirect_index(i, iv) {
                out.push(IndirectAccess {
                    kind: AccessKind::Store,
                    array: *a,
                    index: i.clone(),
                    depth: load_depth(i),
                });
            }
            detect_expr(i, iv, out);
            detect_expr(v, iv, out);
        }
        Stmt::Rmw(a, i, _, v) => {
            if is_indirect_index(i, iv) {
                out.push(IndirectAccess {
                    kind: AccessKind::Rmw,
                    array: *a,
                    index: i.clone(),
                    depth: load_depth(i),
                });
            }
            detect_expr(i, iv, out);
            detect_expr(v, iv, out);
        }
        Stmt::Assign(_, e) => detect_expr(e, iv, out),
        Stmt::If(c, body) => {
            detect_expr(c, iv, out);
            for s in body {
                detect_stmt(s, iv, out);
            }
        }
        Stmt::For(inner) => {
            detect_expr(&inner.lo, iv, out);
            detect_expr(&inner.hi, iv, out);
            for s in &inner.body {
                detect_stmt(s, iv, out);
            }
        }
        Stmt::BufWrite(_, off, v) => {
            detect_expr(off, iv, out);
            detect_expr(v, iv, out);
        }
    }
}

fn detect_expr(e: &Expr, iv: VarId, out: &mut Vec<IndirectAccess>) {
    match e {
        Expr::Load(a, i) => {
            if is_indirect_index(i, iv) {
                out.push(IndirectAccess {
                    kind: AccessKind::Load,
                    array: *a,
                    index: (**i).clone(),
                    depth: load_depth(i),
                });
            }
            detect_expr(i, iv, out);
        }
        Expr::Bin(_, a, b) => {
            detect_expr(a, iv, out);
            detect_expr(b, iv, out);
        }
        Expr::BufRead(_, i) => detect_expr(i, iv, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Program};

    fn gather_loop(p: &mut Program) -> Loop {
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let c = p.array("C", 4);
        let i = p.var();
        Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![Stmt::Store(
                c,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::Var(i))),
            )],
        }
    }

    #[test]
    fn detects_single_level_gather() {
        let mut p = Program::new();
        let l = gather_loop(&mut p);
        let found = detect(&l);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AccessKind::Load);
        assert_eq!(found[0].array, 0);
        assert_eq!(found[0].depth, 1);
    }

    #[test]
    fn detects_two_level_indirection() {
        // A[B[C[i]]]
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 8);
        let c = p.array("C", 4);
        let s = p.array("S", 4);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![Stmt::Store(
                s,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::load(c, Expr::Var(i)))),
            )],
        };
        let found = detect(&l);
        // Both A[B[C[i]]] (depth 2) and B[C[i]] (depth 1) are indirect.
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].depth, 2);
        assert_eq!(found[1].depth, 1);
    }

    #[test]
    fn streaming_access_not_flagged() {
        // C[i] = A[i + 4]: affine, not indirect.
        let mut p = Program::new();
        let a = p.array("A", 8);
        let c = p.array("C", 4);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![Stmt::Store(
                c,
                Expr::Var(i),
                Expr::load(a, Expr::bin(BinOp::Add, Expr::Var(i), Expr::Const(4))),
            )],
        };
        assert!(detect(&l).is_empty());
    }

    #[test]
    fn temp_inlining_exposes_chain() {
        // t = B[i]; A[t] += 1  — indirection through a temporary.
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let i = p.var();
        let t = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![
                Stmt::Assign(t, Expr::load(b, Expr::Var(i))),
                Stmt::Rmw(a, Expr::Var(t), crate::ir::RmwOp::Add, Expr::Const(1)),
            ],
        };
        let found = detect(&l);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AccessKind::Rmw);
        assert_eq!(found[0].array, a);
    }

    #[test]
    fn hash_style_address_calc_detected() {
        // A[(C[i] & 255) >> 4] = i  (PRH/PRO pattern)
        let mut p = Program::new();
        let a = p.array("A", 64);
        let c = p.array("C", 4);
        let i = p.var();
        let idx = Expr::bin(
            BinOp::Shr,
            Expr::bin(BinOp::And, Expr::load(c, Expr::Var(i)), Expr::Const(255)),
            Expr::Const(4),
        );
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![Stmt::Store(a, idx, Expr::Var(i))],
        };
        let found = detect(&l);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AccessKind::Store);
    }

    #[test]
    fn conditional_access_detected() {
        // if (D[i] >= 1) { x = A[B[i]] ... }
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let d = p.array("D", 4);
        let s = p.array("S", 4);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![Stmt::If(
                Expr::bin(BinOp::Ge, Expr::load(d, Expr::Var(i)), Expr::Const(1)),
                vec![Stmt::Store(
                    s,
                    Expr::Var(i),
                    Expr::load(a, Expr::load(b, Expr::Var(i))),
                )],
            )],
        };
        let found = detect(&l);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].array, a);
    }
}
