//! Lowering packed ops to DX100 API calls (paper Figure 7(d)), and a
//! functional executor that runs the lowered calls on the real accelerator
//! model — the compiler's end-to-end verification path.

use dx100_common::{AluOp, DType};
use dx100_core::functional::{ExecError, FunctionalDx100};
use dx100_core::isa::{Instruction, RegId, TileId};
use dx100_core::{Dx100Config, MemoryImage};

use crate::hoist::{PackedOp, TransformedLoop};
use crate::ir::{ArrayId, BinOp, Expr, RmwOp, VarId};

/// A virtual tile number (bound to physical [`TileId`]s at execution).
pub type VTile = usize;

/// One lowered DX100 API call.
#[derive(Debug, Clone, PartialEq)]
pub enum Dx100Call {
    /// Stream-load `array[scale*i + offset]` for every tile iteration into
    /// `dst` (lowers to `SLD`).
    SldAffine {
        /// Source array.
        array: ArrayId,
        /// Index scale.
        scale: i64,
        /// Index offset.
        offset: i64,
        /// Destination tile.
        dst: VTile,
    },
    /// Indirect load `array[idx[k]]` (lowers to `ILD`).
    Ild {
        /// Gathered array.
        array: ArrayId,
        /// Tile of element indices.
        idx: VTile,
        /// Destination tile.
        dst: VTile,
        /// Optional condition tile.
        cond: Option<VTile>,
    },
    /// Indirect store (lowers to `IST`).
    Ist {
        /// Target array.
        array: ArrayId,
        /// Tile of element indices.
        idx: VTile,
        /// Tile of values.
        val: VTile,
        /// Optional condition tile.
        cond: Option<VTile>,
    },
    /// Indirect read-modify-write (lowers to `IRMW`).
    Irmw {
        /// Update operator.
        op: RmwOp,
        /// Target array.
        array: ArrayId,
        /// Tile of element indices.
        idx: VTile,
        /// Tile of values.
        val: VTile,
        /// Optional condition tile.
        cond: Option<VTile>,
    },
    /// `dst[k] = src[k] op imm` (lowers to `ALUS` with a scalar register).
    AluScalar {
        /// ALU operator.
        op: BinOp,
        /// Source tile.
        src: VTile,
        /// Immediate operand (placed in a register).
        imm: i64,
        /// Destination tile.
        dst: VTile,
    },
    /// Copy a host buffer (filled by the residual loop) into a tile.
    HostBuf {
        /// Buffer index.
        buf: usize,
        /// Destination tile.
        dst: VTile,
    },
    /// Expose a gathered tile as a host buffer for the residual loop.
    BufFrom {
        /// Source tile.
        src: VTile,
        /// Buffer index.
        buf: usize,
    },
}

/// Why an index expression cannot be lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// The expression is not of a supported shape.
    UnsupportedIndex(Expr),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::UnsupportedIndex(e) => write!(f, "unsupported index expression {e:?}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Detects `scale * iv + offset` (any association).
fn affine_of(e: &Expr, iv: VarId) -> Option<(i64, i64)> {
    match e {
        Expr::Const(c) => Some((0, *c)),
        Expr::Var(v) if *v == iv => Some((1, 0)),
        Expr::Bin(BinOp::Add, a, b) => {
            let (s1, o1) = affine_of(a, iv)?;
            let (s2, o2) = affine_of(b, iv)?;
            Some((s1 + s2, o1 + o2))
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            let (s1, o1) = affine_of(a, iv)?;
            let (s2, o2) = affine_of(b, iv)?;
            Some((s1 - s2, o1 - o2))
        }
        Expr::Bin(BinOp::Mul, a, b) => match (affine_of(a, iv), affine_of(b, iv)) {
            (Some((0, c)), Some((s, o))) | (Some((s, o)), Some((0, c))) => Some((s * c, o * c)),
            _ => None,
        },
        _ => None,
    }
}

/// Lowering context: allocates virtual tiles.
#[derive(Debug, Default)]
pub struct Lowerer {
    calls: Vec<Dx100Call>,
    next_tile: VTile,
}

impl Lowerer {
    fn tile(&mut self) -> VTile {
        self.next_tile += 1;
        self.next_tile - 1
    }

    /// Lowers an index expression to a tile of per-iteration indices.
    ///
    /// Supported shapes: affine `a*i + b` (pure streaming — lowered by the
    /// caller), `B[affine]`, nested `B[C[...]]`, and mask/shift chains
    /// `(expr & m) >> s` (the hash-join address calculation).
    ///
    /// # Errors
    /// [`LowerError::UnsupportedIndex`] for anything else.
    pub fn lower_index(&mut self, e: &Expr, iv: VarId) -> Result<VTile, LowerError> {
        // Mask/shift around a sub-expression.
        if let Expr::Bin(op @ (BinOp::And | BinOp::Shr), sub, c) = e {
            if let Expr::Const(imm) = **c {
                let src = self.lower_index(sub, iv)?;
                let dst = self.tile();
                self.calls.push(Dx100Call::AluScalar {
                    op: *op,
                    src,
                    imm,
                    dst,
                });
                return Ok(dst);
            }
        }
        if let Expr::Load(arr, idx) = e {
            // Innermost: affine index → stream load of the index array.
            if let Some((scale, offset)) = affine_of(idx, iv) {
                let dst = self.tile();
                self.calls.push(Dx100Call::SldAffine {
                    array: *arr,
                    scale,
                    offset,
                    dst,
                });
                return Ok(dst);
            }
            // Another level of indirection below.
            let inner = self.lower_index(idx, iv)?;
            let dst = self.tile();
            self.calls.push(Dx100Call::Ild {
                array: *arr,
                idx: inner,
                dst,
                cond: None,
            });
            return Ok(dst);
        }
        Err(LowerError::UnsupportedIndex(e.clone()))
    }

    /// Lowers a whole transformed loop's packed ops.
    ///
    /// # Errors
    /// Propagates unsupported index shapes.
    pub fn lower(mut self, t: &TransformedLoop) -> Result<Vec<Dx100Call>, LowerError> {
        for op in &t.prologue {
            match op {
                PackedOp::Load { array, index, buf } => {
                    let idx_tile = self.lower_index(&index.expr, index.iv)?;
                    let dst = self.tile();
                    self.calls.push(Dx100Call::Ild {
                        array: *array,
                        idx: idx_tile,
                        dst,
                        cond: None,
                    });
                    self.calls.push(Dx100Call::BufFrom {
                        src: dst,
                        buf: *buf,
                    });
                }
                PackedOp::EvalToBuf { .. } | PackedOp::Store { .. } | PackedOp::Rmw { .. } => {
                    unreachable!("only packed loads appear in prologues")
                }
            }
        }
        for op in &t.epilogue {
            match op {
                PackedOp::Store {
                    array,
                    index,
                    value_buf,
                    cond_buf,
                } => {
                    let idx_tile = self.lower_index(&index.expr, index.iv)?;
                    let val = self.tile();
                    self.calls.push(Dx100Call::HostBuf {
                        buf: *value_buf,
                        dst: val,
                    });
                    let cond = self.lower_cond(cond_buf);
                    self.calls.push(Dx100Call::Ist {
                        array: *array,
                        idx: idx_tile,
                        val,
                        cond,
                    });
                }
                PackedOp::Rmw {
                    array,
                    index,
                    op,
                    value_buf,
                    cond_buf,
                } => {
                    let idx_tile = self.lower_index(&index.expr, index.iv)?;
                    let val = self.tile();
                    self.calls.push(Dx100Call::HostBuf {
                        buf: *value_buf,
                        dst: val,
                    });
                    let cond = self.lower_cond(cond_buf);
                    self.calls.push(Dx100Call::Irmw {
                        op: *op,
                        array: *array,
                        idx: idx_tile,
                        val,
                        cond,
                    });
                }
                PackedOp::Load { .. } | PackedOp::EvalToBuf { .. } => {
                    unreachable!("only stores/RMWs appear in epilogues")
                }
            }
        }
        Ok(self.calls)
    }

    fn lower_cond(&mut self, cond_buf: &Option<usize>) -> Option<VTile> {
        cond_buf.map(|cb| {
            let t = self.tile();
            self.calls.push(Dx100Call::HostBuf { buf: cb, dst: t });
            t
        })
    }
}

/// Executes lowered calls for one tile `[lo, hi)` on the functional DX100,
/// against `arrays` (i64 contents) and `bufs` (host buffers).
///
/// Prologue calls fill `bufs` via [`Dx100Call::BufFrom`]; epilogue calls
/// read `bufs` via [`Dx100Call::HostBuf`] and mutate `arrays`.
///
/// # Errors
/// Propagates accelerator-level execution errors.
///
/// # Panics
/// Panics if the tile is larger than the accelerator's tile capacity or
/// more virtual tiles are used than the scratchpad has.
pub fn execute_calls(
    calls: &[Dx100Call],
    lo: i64,
    hi: i64,
    arrays: &mut [Vec<i64>],
    bufs: &mut Vec<Vec<i64>>,
) -> Result<(), ExecError> {
    let count = (hi - lo).max(0) as u64;
    let mut cfg = Dx100Config::paper();
    cfg.tile_elems = cfg.tile_elems.max(count as usize);
    let mut dx = FunctionalDx100::new(cfg);
    let mut mem = MemoryImage::new();
    let handles: Vec<_> = arrays
        .iter()
        .map(|a| mem.alloc("arr", DType::I64, a.len() as u64))
        .collect();
    for (h, a) in handles.iter().zip(arrays.iter()) {
        for (i, v) in a.iter().enumerate() {
            mem.write_elem(*h, i as u64, *v as u64);
        }
    }
    let vt = |v: VTile| TileId::new(v as u8);
    const R_START: RegId = RegId::new(0);
    const R_STRIDE: RegId = RegId::new(1);
    const R_COUNT: RegId = RegId::new(2);
    const R_IMM: RegId = RegId::new(3);
    dx.write_reg(R_COUNT, count);
    for call in calls {
        match call {
            Dx100Call::SldAffine {
                array,
                scale,
                offset,
                dst,
            } => {
                let start = scale * lo + offset;
                assert!(start >= 0 && *scale >= 0, "negative stream addressing");
                dx.write_reg(R_START, start as u64);
                dx.write_reg(R_STRIDE, *scale as u64);
                dx.execute(
                    &Instruction::sld(
                        DType::I64,
                        handles[*array].base(),
                        vt(*dst),
                        R_START,
                        R_STRIDE,
                        R_COUNT,
                    ),
                    &mut mem,
                )?;
            }
            Dx100Call::Ild {
                array,
                idx,
                dst,
                cond,
            } => {
                let mut i =
                    Instruction::ild(DType::I64, handles[*array].base(), vt(*dst), vt(*idx));
                if let Some(c) = cond {
                    i = i.with_condition(vt(*c));
                }
                dx.execute(&i, &mut mem)?;
            }
            Dx100Call::Ist {
                array,
                idx,
                val,
                cond,
            } => {
                let mut i =
                    Instruction::ist(DType::I64, handles[*array].base(), vt(*idx), vt(*val));
                if let Some(c) = cond {
                    i = i.with_condition(vt(*c));
                }
                dx.execute(&i, &mut mem)?;
            }
            Dx100Call::Irmw {
                op,
                array,
                idx,
                val,
                cond,
            } => {
                let aop = match op {
                    RmwOp::Add => AluOp::Add,
                    RmwOp::Min => AluOp::Min,
                    RmwOp::Max => AluOp::Max,
                };
                let mut i =
                    Instruction::irmw(DType::I64, aop, handles[*array].base(), vt(*idx), vt(*val));
                if let Some(c) = cond {
                    i = i.with_condition(vt(*c));
                }
                dx.execute(&i, &mut mem)?;
            }
            Dx100Call::AluScalar { op, src, imm, dst } => {
                let aop = match op {
                    BinOp::And => AluOp::And,
                    BinOp::Shr => AluOp::Shr,
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::Mul => AluOp::Mul,
                    other => panic!("unsupported scalar ALU op {other:?}"),
                };
                dx.write_reg(R_IMM, *imm as u64);
                dx.execute(
                    &Instruction::Alus {
                        dtype: DType::I64,
                        op: aop,
                        td: vt(*dst),
                        ts: vt(*src),
                        rs: R_IMM,
                        tc: None,
                    },
                    &mut mem,
                )?;
            }
            Dx100Call::HostBuf { buf, dst } => {
                let lanes: Vec<u64> = bufs[*buf].iter().map(|v| *v as u64).collect();
                dx.write_tile(vt(*dst), &lanes);
            }
            Dx100Call::BufFrom { src, buf } => {
                if bufs.len() <= *buf {
                    bufs.resize(*buf + 1, Vec::new());
                }
                bufs[*buf] = dx
                    .tile(vt(*src))
                    .valid()
                    .iter()
                    .map(|v| *v as i64)
                    .collect();
            }
        }
    }
    for (h, a) in handles.iter().zip(arrays.iter_mut()) {
        for (i, v) in a.iter_mut().enumerate() {
            *v = mem.read_elem(*h, i as u64) as i64;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_detection() {
        let iv = 3;
        assert_eq!(affine_of(&Expr::Var(iv), iv), Some((1, 0)));
        assert_eq!(affine_of(&Expr::Const(5), iv), Some((0, 5)));
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Const(4), Expr::Var(iv)),
            Expr::Const(2),
        );
        assert_eq!(affine_of(&e, iv), Some((4, 2)));
        assert_eq!(affine_of(&Expr::load(0, Expr::Var(iv)), iv), None);
    }

    #[test]
    fn single_level_index_lowers_to_sld() {
        let mut l = Lowerer::default();
        let t = l.lower_index(&Expr::load(7, Expr::Var(0)), 0).unwrap();
        assert_eq!(t, 0);
        assert_eq!(
            l.calls,
            vec![Dx100Call::SldAffine {
                array: 7,
                scale: 1,
                offset: 0,
                dst: 0
            }]
        );
    }

    #[test]
    fn two_level_index_lowers_to_sld_plus_ild() {
        let mut l = Lowerer::default();
        // B[C[i]]
        let e = Expr::load(1, Expr::load(2, Expr::Var(0)));
        l.lower_index(&e, 0).unwrap();
        assert!(matches!(l.calls[0], Dx100Call::SldAffine { array: 2, .. }));
        assert!(matches!(l.calls[1], Dx100Call::Ild { array: 1, .. }));
    }

    #[test]
    fn mask_shift_lowers_to_alu_chain() {
        let mut l = Lowerer::default();
        // (C[i] & 240) >> 4
        let e = Expr::bin(
            BinOp::Shr,
            Expr::bin(BinOp::And, Expr::load(5, Expr::Var(0)), Expr::Const(240)),
            Expr::Const(4),
        );
        l.lower_index(&e, 0).unwrap();
        assert!(matches!(l.calls[0], Dx100Call::SldAffine { array: 5, .. }));
        assert!(matches!(
            l.calls[1],
            Dx100Call::AluScalar {
                op: BinOp::And,
                imm: 240,
                ..
            }
        ));
        assert!(matches!(
            l.calls[2],
            Dx100Call::AluScalar {
                op: BinOp::Shr,
                imm: 4,
                ..
            }
        ));
    }

    #[test]
    fn unsupported_index_errors() {
        let mut l = Lowerer::default();
        // i * i is not affine and contains no load.
        let e = Expr::bin(BinOp::Mul, Expr::Var(0), Expr::Var(0));
        assert!(l.lower_index(&e, 0).is_err());
    }

    #[test]
    fn execute_calls_gathers_on_functional_dx100() {
        // Lower C[i] = A[B[i]] by hand and execute.
        let calls = vec![
            Dx100Call::SldAffine {
                array: 1,
                scale: 1,
                offset: 0,
                dst: 0,
            },
            Dx100Call::Ild {
                array: 0,
                idx: 0,
                dst: 1,
                cond: None,
            },
            Dx100Call::BufFrom { src: 1, buf: 0 },
        ];
        let mut arrays = vec![
            (0..16i64).map(|x| x * 100).collect::<Vec<_>>(), // A
            vec![3, 1, 4, 1, 5, 9, 2, 6],                    // B
        ];
        let mut bufs = Vec::new();
        execute_calls(&calls, 0, 8, &mut arrays, &mut bufs).unwrap();
        assert_eq!(bufs[0], vec![300, 100, 400, 100, 500, 900, 200, 600]);
    }
}
