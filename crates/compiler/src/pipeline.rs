//! The full compilation pipeline: tile → detect → legality → hoist → lower,
//! plus an offloaded executor that runs the result against the functional
//! DX100 — end-to-end, this is Figure 7 of the paper.

use crate::hoist::{hoist, TransformedLoop};
use crate::interp::Env;
use crate::ir::{Expr, Program, Stmt};
use crate::legality::Illegal;
use crate::lower::{execute_calls, Dx100Call, LowerError, Lowerer};
use crate::tile::static_tiles;

/// Why compilation failed.
#[derive(Debug)]
pub enum CompileError {
    /// The program is not a single top-level counted loop with constant
    /// bounds.
    UnsupportedShape,
    /// The loop failed a legality rule.
    Illegal(Illegal),
    /// A packed op's index could not be lowered to DX100 calls.
    Lowering(LowerError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnsupportedShape => {
                write!(f, "program is not a single constant-bound loop")
            }
            CompileError::Illegal(e) => write!(f, "illegal to offload: {e}"),
            CompileError::Lowering(e) => write!(f, "cannot lower: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<Illegal> for CompileError {
    fn from(e: Illegal) -> Self {
        CompileError::Illegal(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lowering(e)
    }
}

/// A compiled loop: tile schedule, residual loop, and DX100 call template.
#[derive(Debug)]
pub struct CompiledLoop {
    /// Tile boundaries `(lo, hi)`.
    pub tiles: Vec<(i64, i64)>,
    /// Hoisted form (prologue/residual/epilogue).
    pub transformed: TransformedLoop,
    /// Lowered DX100 calls, executed once per tile.
    pub calls: Vec<Dx100Call>,
}

/// Compiles a program consisting of one top-level counted loop.
///
/// # Errors
/// See [`CompileError`].
pub fn compile_loop(program: &Program, tile_size: i64) -> Result<CompiledLoop, CompileError> {
    let [Stmt::For(l)] = &program.body[..] else {
        return Err(CompileError::UnsupportedShape);
    };
    let (Expr::Const(lo), Expr::Const(hi)) = (&l.lo, &l.hi) else {
        return Err(CompileError::UnsupportedShape);
    };
    let mut next_var = program.num_vars;
    let mut fresh = move || {
        next_var += 1;
        next_var - 1
    };
    let transformed = hoist(l, &mut fresh)?;
    let calls = Lowerer::default().lower(&transformed)?;
    Ok(CompiledLoop {
        tiles: static_tiles(*lo, *hi, tile_size),
        transformed,
        calls,
    })
}

/// Runs a compiled loop offloaded: per tile, the DX100 calls execute on the
/// functional accelerator (prologue gathers + epilogue scatters) while the
/// residual body runs on the interpreter — exactly the split the real
/// system performs.
///
/// The environment must have enough variables for the transformed loop
/// (use [`offload_env`]).
///
/// # Panics
/// Panics if an accelerator call fails (the loop was vetted by `compile`).
pub fn run_offloaded(compiled: &CompiledLoop, env: &mut Env) {
    for &(lo, hi) in &compiled.tiles {
        env.bufs = vec![Vec::new(); compiled.transformed.num_bufs];
        // Prologue: calls up to (and including) the last BufFrom gather.
        let split = compiled
            .calls
            .iter()
            .rposition(|c| matches!(c, Dx100Call::BufFrom { .. }))
            .map(|p| p + 1)
            .unwrap_or(0);
        let (prologue_calls, epilogue_calls) = compiled.calls.split_at(split);
        execute_calls(prologue_calls, lo, hi, &mut env.arrays, &mut env.bufs)
            .expect("prologue calls execute");
        // Ensure residual-written buffers exist.
        let tile_len = (hi - lo).max(0) as usize;
        for b in &mut env.bufs {
            if b.is_empty() {
                b.resize(tile_len, 0);
            }
        }
        for i in lo..hi {
            env.vars[compiled.transformed.iv] = i;
            env.vars[compiled.transformed.tile_offset_var] = i - lo;
            for s in &compiled.transformed.body {
                env.exec(s);
            }
        }
        execute_calls(epilogue_calls, lo, hi, &mut env.arrays, &mut env.bufs)
            .expect("epilogue calls execute");
    }
}

/// An environment sized for running `compiled` over `program`.
pub fn offload_env(program: &Program, compiled: &CompiledLoop) -> Env {
    let mut env = Env::for_program(program);
    let max_var = compiled
        .transformed
        .tile_offset_var
        .max(compiled.transformed.iv)
        + 1;
    if env.vars.len() < max_var {
        env.vars.resize(max_var, 0);
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, RmwOp};

    fn seed_arrays(env: &mut Env, index_len: usize) {
        for (ai, arr) in env.arrays.iter_mut().enumerate() {
            let n = arr.len();
            for (i, v) in arr.iter_mut().enumerate() {
                *v = ((i * 7 + ai * 13) % n.max(1)) as i64;
            }
        }
        let _ = index_len;
    }

    /// Full pipeline check: interpreter result == offloaded (DX100) result.
    fn check_pipeline(program: &Program, tile: i64) {
        let compiled = compile_loop(program, tile).expect("compiles");
        let mut ref_env = Env::for_program(program);
        seed_arrays(&mut ref_env, 0);
        let mut off_env = offload_env(program, &compiled);
        seed_arrays(&mut off_env, 0);
        ref_env.run(program);
        run_offloaded(&compiled, &mut off_env);
        assert_eq!(ref_env.arrays, off_env.arrays);
    }

    #[test]
    fn figure7_gather_end_to_end() {
        // for i in 0..40 { C[i] = A[B[i]] }  (Figure 7's running example)
        let mut p = Program::new();
        let a = p.array("A", 64);
        let b = p.array("B", 40);
        let c = p.array("C", 40);
        let i = p.var();
        p.body.push(Stmt::for_loop(
            i,
            Expr::Const(0),
            Expr::Const(40),
            vec![Stmt::Store(
                c,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::Var(i))),
            )],
        ));
        check_pipeline(&p, 16);
    }

    #[test]
    fn conditional_scatter_end_to_end() {
        // for i { if (D[i] >= 3) A[B[i]] = C[i] + 1 }
        let mut p = Program::new();
        let a = p.array("A", 32);
        let b = p.array("B", 32);
        let c = p.array("C", 32);
        let d = p.array("D", 32);
        let i = p.var();
        p.body.push(Stmt::for_loop(
            i,
            Expr::Const(0),
            Expr::Const(32),
            vec![Stmt::If(
                Expr::bin(BinOp::Ge, Expr::load(d, Expr::Var(i)), Expr::Const(3)),
                vec![Stmt::Store(
                    a,
                    Expr::load(b, Expr::Var(i)),
                    Expr::bin(BinOp::Add, Expr::load(c, Expr::Var(i)), Expr::Const(1)),
                )],
            )],
        ));
        check_pipeline(&p, 8);
    }

    #[test]
    fn hash_join_style_rmw_end_to_end() {
        // for i { H[(K[i] & 15)] += 1 }  (histogram build)
        let mut p = Program::new();
        let h = p.array("H", 16);
        let k = p.array("K", 48);
        let i = p.var();
        p.body.push(Stmt::for_loop(
            i,
            Expr::Const(0),
            Expr::Const(48),
            vec![Stmt::Rmw(
                h,
                Expr::bin(BinOp::And, Expr::load(k, Expr::Var(i)), Expr::Const(15)),
                RmwOp::Add,
                Expr::Const(1),
            )],
        ));
        check_pipeline(&p, 16);
    }

    #[test]
    fn illegal_program_rejected() {
        // Gauss–Seidel-ish: A[B[i]] read, A stored.
        let mut p = Program::new();
        let a = p.array("A", 16);
        let b = p.array("B", 16);
        let i = p.var();
        p.body.push(Stmt::for_loop(
            i,
            Expr::Const(0),
            Expr::Const(16),
            vec![Stmt::Store(
                a,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::Var(i))),
            )],
        ));
        assert!(matches!(compile_loop(&p, 8), Err(CompileError::Illegal(_))));
    }

    #[test]
    fn non_loop_program_rejected() {
        let mut p = Program::new();
        let a = p.array("A", 4);
        p.body.push(Stmt::Store(a, Expr::Const(0), Expr::Const(1)));
        assert!(matches!(
            compile_loop(&p, 8),
            Err(CompileError::UnsupportedShape)
        ));
    }
}
