//! Reference interpreter for the loop IR, plus execution of transformed
//! loops (packed ops + residual body). The equivalence of the two is the
//! compiler's correctness criterion, property-tested in `tests/`.

use crate::hoist::{PackedOp, TransformedLoop};
use crate::ir::{Expr, Program, Stmt};

/// Machine state: scalar variables and array contents.
#[derive(Debug, Clone)]
pub struct Env {
    /// Scalar variables.
    pub vars: Vec<i64>,
    /// Array contents.
    pub arrays: Vec<Vec<i64>>,
    /// Packed buffers (filled by hoisted packed loads).
    pub bufs: Vec<Vec<i64>>,
}

impl Env {
    /// Creates a zeroed environment for `program`.
    pub fn for_program(program: &Program) -> Self {
        Env {
            vars: vec![0; program.num_vars],
            arrays: program.arrays.iter().map(|a| vec![0; a.len]).collect(),
            bufs: Vec::new(),
        }
    }

    /// Evaluates an expression.
    ///
    /// # Panics
    /// Panics on out-of-bounds array accesses (program bugs).
    pub fn eval(&self, e: &Expr) -> i64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Var(v) => self.vars[*v],
            Expr::Load(a, i) => {
                let idx = self.eval(i);
                self.arrays[*a][idx as usize]
            }
            Expr::Bin(op, a, b) => op.eval(self.eval(a), self.eval(b)),
            Expr::BufRead(b, i) => {
                let idx = self.eval(i);
                self.bufs[*b][idx as usize]
            }
        }
    }

    /// Executes one statement.
    pub fn exec(&mut self, s: &Stmt) {
        match s {
            Stmt::Store(a, i, v) => {
                let idx = self.eval(i) as usize;
                let val = self.eval(v);
                self.arrays[*a][idx] = val;
            }
            Stmt::Rmw(a, i, op, v) => {
                let idx = self.eval(i) as usize;
                let val = self.eval(v);
                let old = self.arrays[*a][idx];
                self.arrays[*a][idx] = op.eval(old, val);
            }
            Stmt::Assign(v, e) => {
                self.vars[*v] = self.eval(e);
            }
            Stmt::If(c, body) => {
                if self.eval(c) != 0 {
                    for s in body {
                        self.exec(s);
                    }
                }
            }
            Stmt::For(l) => {
                let lo = self.eval(&l.lo);
                let hi = self.eval(&l.hi);
                for i in lo..hi {
                    self.vars[l.iv] = i;
                    for s in &l.body {
                        self.exec(s);
                    }
                }
            }
            Stmt::BufWrite(b, off, v) => {
                let off = self.eval(off) as usize;
                let val = self.eval(v);
                self.bufs[*b][off] = val;
            }
        }
    }

    /// Runs a whole program body.
    pub fn run(&mut self, program: &Program) {
        for s in &program.body {
            self.exec(s);
        }
    }

    /// Executes one tile of a transformed loop: prologue packed ops, the
    /// residual body over `lo..hi`, then epilogue packed ops — the
    /// functional semantics of the DX100 offload.
    pub fn exec_transformed_tile(&mut self, t: &TransformedLoop, lo: i64, hi: i64) {
        self.bufs = vec![Vec::new(); t.num_bufs];
        // Prologue: packed loads gather into buffers.
        for op in &t.prologue {
            self.exec_packed(op, lo, hi);
        }
        // Zero-fill buffers the residual loop writes (enqueue targets).
        let tile_len = (hi - lo).max(0) as usize;
        for b in &mut self.bufs {
            if b.is_empty() {
                b.resize(tile_len, 0);
            }
        }
        // Residual loop.
        for i in lo..hi {
            self.vars[t.iv] = i;
            // Buffer index is the iteration offset within the tile.
            self.vars[t.tile_offset_var] = i - lo;
            for s in &t.body {
                self.exec(s);
            }
        }
        // Epilogue: packed stores / RMWs scatter from buffers.
        for op in &t.epilogue {
            self.exec_packed(op, lo, hi);
        }
    }

    /// Executes one packed op over iterations `lo..hi`.
    fn exec_packed(&mut self, op: &PackedOp, lo: i64, hi: i64) {
        match op {
            PackedOp::Load { array, index, buf } => {
                let mut out = Vec::with_capacity((hi - lo) as usize);
                for i in lo..hi {
                    self.vars[index.iv] = i;
                    let idx = self.eval(&index.expr) as usize;
                    out.push(self.arrays[*array][idx]);
                }
                self.bufs[*buf] = out;
            }
            PackedOp::Store {
                array,
                index,
                value_buf,
                cond_buf,
            } => {
                for i in lo..hi {
                    let off = (i - lo) as usize;
                    if let Some(cb) = cond_buf {
                        if self.bufs[*cb][off] == 0 {
                            continue;
                        }
                    }
                    self.vars[index.iv] = i;
                    let idx = self.eval(&index.expr) as usize;
                    self.arrays[*array][idx] = self.bufs[*value_buf][off];
                }
            }
            PackedOp::Rmw {
                array,
                index,
                op,
                value_buf,
                cond_buf,
            } => {
                for i in lo..hi {
                    let off = (i - lo) as usize;
                    if let Some(cb) = cond_buf {
                        if self.bufs[*cb][off] == 0 {
                            continue;
                        }
                    }
                    self.vars[index.iv] = i;
                    let idx = self.eval(&index.expr) as usize;
                    let old = self.arrays[*array][idx];
                    self.arrays[*array][idx] = op.eval(old, self.bufs[*value_buf][off]);
                }
            }
            PackedOp::EvalToBuf { expr, iv, buf } => {
                let mut out = Vec::with_capacity((hi - lo) as usize);
                for i in lo..hi {
                    self.vars[*iv] = i;
                    out.push(self.eval(expr));
                }
                self.bufs[*buf] = out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, RmwOp};

    #[test]
    fn gather_loop_interprets() {
        // for i in 0..4 { C[i] = A[B[i]] }
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let c = p.array("C", 4);
        let i = p.var();
        p.body.push(Stmt::for_loop(
            i,
            Expr::Const(0),
            Expr::Const(4),
            vec![Stmt::Store(
                c,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::Var(i))),
            )],
        ));
        let mut env = Env::for_program(&p);
        env.arrays[a] = (0..8).map(|x| x * 10).collect();
        env.arrays[b] = vec![7, 0, 3, 3];
        env.run(&p);
        assert_eq!(env.arrays[c], vec![70, 0, 30, 30]);
    }

    #[test]
    fn conditional_rmw_interprets() {
        // for i in 0..4 { if (D[i] >= 2) A[B[i]] += 1 }
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let d = p.array("D", 4);
        let i = p.var();
        p.body.push(Stmt::for_loop(
            i,
            Expr::Const(0),
            Expr::Const(4),
            vec![Stmt::If(
                Expr::bin(BinOp::Ge, Expr::load(d, Expr::Var(i)), Expr::Const(2)),
                vec![Stmt::Rmw(
                    a,
                    Expr::load(b, Expr::Var(i)),
                    RmwOp::Add,
                    Expr::Const(1),
                )],
            )],
        ));
        let mut env = Env::for_program(&p);
        env.arrays[b] = vec![1, 1, 2, 3];
        env.arrays[d] = vec![5, 0, 2, 1];
        env.run(&p);
        assert_eq!(env.arrays[a], vec![0, 1, 1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn nested_range_loops_interpret() {
        // for i in 0..3 { for j in H[i]..H[i+1] { S[0] += E[j] } }
        let mut p = Program::new();
        let h = p.array("H", 4);
        let e = p.array("E", 6);
        let s = p.array("S", 1);
        let i = p.var();
        let j = p.var();
        p.body.push(Stmt::for_loop(
            i,
            Expr::Const(0),
            Expr::Const(3),
            vec![Stmt::For(crate::ir::Loop {
                iv: j,
                lo: Expr::load(h, Expr::Var(i)),
                hi: Expr::load(h, Expr::bin(BinOp::Add, Expr::Var(i), Expr::Const(1))),
                body: vec![Stmt::Rmw(
                    s,
                    Expr::Const(0),
                    RmwOp::Add,
                    Expr::load(e, Expr::Var(j)),
                )],
            })],
        ));
        let mut env = Env::for_program(&p);
        env.arrays[h] = vec![0, 2, 2, 6];
        env.arrays[e] = vec![1, 2, 3, 4, 5, 6];
        env.run(&p);
        assert_eq!(env.arrays[s][0], 21);
    }
}
