//! The loop-level intermediate representation.
//!
//! Deliberately small: counted `for` loops, i64 scalars, 1-D arrays. This is
//! the shape of code Polygeist raises from the C kernels of Table 1, and it
//! is all the DX100 passes need.

/// Identifier of a declared array.
pub type ArrayId = usize;

/// Identifier of a scalar variable (induction variables included).
pub type VarId = usize;

/// Binary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Logical shift right.
    Shr,
    /// Less-than (1/0).
    Lt,
    /// Less-or-equal (1/0).
    Le,
    /// Greater-than (1/0).
    Gt,
    /// Greater-or-equal (1/0).
    Ge,
    /// Equality (1/0).
    Eq,
}

impl BinOp {
    /// Evaluates the operator on two scalars.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
            BinOp::Eq => (a == b) as i64,
        }
    }
}

/// Read-modify-write operators (the associative/commutative subset DX100's
/// IRMW accepts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// `+=`
    Add,
    /// `min=`
    Min,
    /// `max=`
    Max,
}

impl RmwOp {
    /// Evaluates the update.
    pub fn eval(self, old: i64, v: i64) -> i64 {
        match self {
            RmwOp::Add => old.wrapping_add(v),
            RmwOp::Min => old.min(v),
            RmwOp::Max => old.max(v),
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable read.
    Var(VarId),
    /// Array element load `A[index]`.
    Load(ArrayId, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Read of a packed buffer produced by a hoisted `packed_load`
    /// (introduced by the hoisting pass; absent from frontend IR).
    BufRead(usize, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for [`Expr::Load`].
    pub fn load(array: ArrayId, index: Expr) -> Expr {
        Expr::Load(array, Box::new(index))
    }

    /// Convenience constructor for [`Expr::Bin`].
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Whether the expression mentions variable `v`.
    pub fn uses_var(&self, v: VarId) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Var(x) => *x == v,
            Expr::Load(_, i) => i.uses_var(v),
            Expr::Bin(_, a, b) => a.uses_var(v) || b.uses_var(v),
            Expr::BufRead(_, i) => i.uses_var(v),
        }
    }

    /// All arrays loaded anywhere in the expression.
    pub fn loaded_arrays(&self, out: &mut Vec<ArrayId>) {
        match self {
            Expr::Load(a, i) => {
                out.push(*a);
                i.loaded_arrays(out);
            }
            Expr::Bin(_, a, b) => {
                a.loaded_arrays(out);
                b.loaded_arrays(out);
            }
            Expr::BufRead(_, i) => i.loaded_arrays(out),
            _ => {}
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `A[index] = value`.
    Store(ArrayId, Expr, Expr),
    /// `A[index] op= value`.
    Rmw(ArrayId, Expr, RmwOp, Expr),
    /// `var = value`.
    Assign(VarId, Expr),
    /// `if (cond != 0) { body }`.
    If(Expr, Vec<Stmt>),
    /// Counted loop.
    For(Loop),
    /// Write into a packed buffer: `buf[offset] = value` (introduced by
    /// the hoisting pass for sunk stores/RMWs; absent from frontend IR).
    BufWrite(usize, Expr, Expr),
}

impl Stmt {
    /// Convenience constructor for [`Stmt::For`].
    pub fn for_loop(iv: VarId, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::For(Loop { iv, lo, hi, body })
    }
}

/// A counted loop `for iv in lo..hi`.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Induction variable (fresh per loop).
    pub iv: VarId,
    /// Inclusive lower bound expression.
    pub lo: Expr,
    /// Exclusive upper bound expression.
    pub hi: Expr,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// An array declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Diagnostic name.
    pub name: String,
    /// Element count.
    pub len: usize,
}

/// A whole program: declarations plus a top-level statement list.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Number of scalar variables allocated.
    pub num_vars: usize,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an array.
    pub fn array(&mut self, name: &str, len: usize) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            len,
        });
        self.arrays.len() - 1
    }

    /// Allocates a fresh scalar variable.
    pub fn var(&mut self) -> VarId {
        self.num_vars += 1;
        self.num_vars - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Shr.eval(16, 2), 4);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
    }

    #[test]
    fn rmw_eval() {
        assert_eq!(RmwOp::Add.eval(10, 5), 15);
        assert_eq!(RmwOp::Min.eval(10, 5), 5);
        assert_eq!(RmwOp::Max.eval(10, 5), 10);
    }

    #[test]
    fn uses_var_traverses() {
        let e = Expr::load(0, Expr::bin(BinOp::Add, Expr::Var(3), Expr::Const(1)));
        assert!(e.uses_var(3));
        assert!(!e.uses_var(2));
    }

    #[test]
    fn loaded_arrays_collects_nested() {
        let e = Expr::load(1, Expr::load(2, Expr::Var(0)));
        let mut out = Vec::new();
        e.loaded_arrays(&mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn program_builders() {
        let mut p = Program::new();
        let a = p.array("A", 10);
        let v = p.var();
        assert_eq!(a, 0);
        assert_eq!(v, 0);
        assert_eq!(p.arrays[0].name, "A");
    }
}
