//! The interval profiler: functional access models → per-interval
//! memory-access-vector features.
//!
//! A kernel stage's `access` closure replays each work item's memory
//! behaviour against an [`AccessSink`], which maintains *cumulative*
//! counters plus two cheap structural models (an open-row model per
//! pseudo-bank and a direct-mapped line-reuse filter). At each interval
//! boundary the profiler diffs the cumulative counters with the same
//! `interval_*` helpers the epoch sampler uses (`dx100_common::stats`) and
//! emits one [`FeatureVec`] per interval.

use dx100_common::stats::{interval_delta, interval_per_kilo, interval_rate};

/// Pseudo-banks in the open-row locality model (power of two).
const BANKS: usize = 16;
/// log2 of the modeled DRAM row size in bytes (8 KiB).
const ROW_SHIFT: u32 = 13;
/// log2 of the cache-line size.
const LINE_SHIFT: u32 = 6;
/// Entries in the direct-mapped line-reuse filter (≈ a 256 KiB cache).
const REUSE_SLOTS: usize = 4096;

/// Cumulative counters the profiler snapshots at interval boundaries.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    instructions: u64,
    stream_accesses: u64,
    indirect_accesses: u64,
    row_hits: u64,
    row_misses: u64,
    line_misses: u64,
}

/// Receives one work item's functional memory accesses during profiling.
pub struct AccessSink {
    cur: Counters,
    prev: Counters,
    open_row: [u64; BANKS],
    reuse: Vec<u64>,
}

impl Default for AccessSink {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessSink {
    /// A fresh sink with cold row and reuse models.
    pub fn new() -> Self {
        AccessSink {
            cur: Counters::default(),
            prev: Counters::default(),
            open_row: [u64::MAX; BANKS],
            reuse: vec![u64::MAX; REUSE_SLOTS],
        }
    }

    /// Records `n` non-memory instructions (address arithmetic, ALU work).
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.cur.instructions += n;
    }

    /// Records a sequential/streaming access at byte address `addr`.
    #[inline]
    pub fn stream(&mut self, addr: u64) {
        self.cur.stream_accesses += 1;
        self.touch(addr);
    }

    /// Records a data-dependent (indirect) access at byte address `addr`.
    #[inline]
    pub fn indirect(&mut self, addr: u64) {
        self.cur.indirect_accesses += 1;
        self.touch(addr);
    }

    fn touch(&mut self, addr: u64) {
        self.cur.instructions += 1;
        let line = addr >> LINE_SHIFT;
        let slot = (line as usize) % REUSE_SLOTS;
        if self.reuse[slot] != line {
            self.reuse[slot] = line;
            self.cur.line_misses += 1;
            // Only line-filter misses reach the row model, mirroring how
            // only cache misses reach DRAM.
            let bank = (line as usize) & (BANKS - 1);
            let row = addr >> ROW_SHIFT;
            if self.open_row[bank] == row {
                self.cur.row_hits += 1;
            } else {
                self.open_row[bank] = row;
                self.cur.row_misses += 1;
            }
        }
    }

    /// Closes the current interval: returns its features and advances the
    /// baseline snapshot.
    pub fn finish_interval(&mut self) -> FeatureVec {
        let c = self.cur;
        let p = self.prev;
        let accesses = interval_delta(
            c.stream_accesses + c.indirect_accesses,
            p.stream_accesses + p.indirect_accesses,
        );
        let indirect = interval_delta(c.indirect_accesses, p.indirect_accesses);
        let f = FeatureVec {
            indirect_density: if accesses == 0 {
                0.0
            } else {
                indirect as f64 / accesses as f64
            },
            est_row_hit_rate: interval_rate((c.row_hits, p.row_hits), (c.row_misses, p.row_misses)),
            est_mpki: interval_per_kilo(
                (c.line_misses, p.line_misses),
                (c.instructions, p.instructions),
            ),
            indirect_pki: interval_per_kilo(
                (c.indirect_accesses, p.indirect_accesses),
                (c.instructions, p.instructions),
            ),
        };
        self.prev = c;
        f
    }
}

/// Memory-access-vector features of one profiled interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVec {
    /// Fraction of memory accesses that are data-dependent.
    pub indirect_density: f64,
    /// Row-buffer hit-rate estimate from the open-row model.
    pub est_row_hit_rate: f64,
    /// Misses-per-kilo-instruction estimate from the line-reuse filter.
    pub est_mpki: f64,
    /// Indirect accesses per kilo-instruction (DX100 queue-pressure proxy).
    pub indirect_pki: f64,
}

impl FeatureVec {
    /// The feature vector as a point for clustering.
    pub fn as_point(&self) -> Vec<f64> {
        vec![
            self.indirect_density,
            self.est_row_hit_rate,
            self.est_mpki,
            self.indirect_pki,
        ]
    }
}

/// Profiles a stage's functional access model over `items` work items cut
/// into `intervals` equal windows; returns one [`FeatureVec`] per interval.
pub fn profile_stage(
    access: &(dyn Fn(usize, &mut AccessSink) + Send + Sync),
    items: usize,
    intervals: usize,
) -> Vec<FeatureVec> {
    let intervals = intervals.clamp(1, items.max(1));
    let per = items.div_ceil(intervals);
    let mut sink = AccessSink::new();
    let mut out = Vec::with_capacity(intervals);
    // Boundaries are clamped to `items`, so the final (possibly partial)
    // interval always closes at `i + 1 == items`; fewer than `intervals`
    // may be emitted when `per` over-covers, never an empty trailing one.
    let mut next = per.min(items);
    for i in 0..items {
        access(i, &mut sink);
        if i + 1 == next {
            out.push(sink.finish_interval());
            next = (next + per).min(items);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_count_and_boundaries() {
        let feats = profile_stage(&|_i, s| s.stream(0), 100, 10);
        assert_eq!(feats.len(), 10);
        let feats = profile_stage(&|_i, s| s.stream(0), 7, 10);
        assert_eq!(feats.len(), 7); // clamped to one item per interval
    }

    #[test]
    fn partial_tail_never_emits_out_of_range_interval() {
        // per = ceil(1024/48) = 22, so 22 × 47 > 1024: the last interval is
        // partial and the count drops below the target — but every emitted
        // interval must map to a non-empty in-range item window.
        for items in [512usize, 1000, 1024, 1025] {
            let feats = profile_stage(&|_i, s| s.stream(0), items, 48);
            let per = items.div_ceil(48);
            assert!(feats.len() <= 48);
            for i in 0..feats.len() {
                assert!(i * per < items, "interval {i} empty for items={items}");
            }
            // Coverage: the last interval's end clamps to exactly `items`.
            assert_eq!(((feats.len() - 1) * per + per).min(items), items);
        }
    }

    #[test]
    fn indirect_density_reflects_access_mix() {
        // Items alternate: even items streaming, odd items indirect.
        let feats = profile_stage(
            &|i, s| {
                if i % 2 == 0 {
                    s.stream(i as u64 * 64)
                } else {
                    s.indirect(i as u64 * 7919 * 64)
                }
            },
            1000,
            4,
        );
        for f in &feats {
            assert!((f.indirect_density - 0.5).abs() < 0.01, "{f:?}");
        }
    }

    #[test]
    fn sequential_walk_has_high_row_hit_estimate() {
        // A sequential walk interleaves across the 16 pseudo-banks; each
        // bank sees 8 consecutive lines per 8 KiB row, so 7 of every 8
        // line misses hit the open row.
        let feats = profile_stage(&|i, s| s.stream(i as u64 * 64), 4096, 2);
        for f in &feats {
            assert!(f.est_row_hit_rate > 0.8, "{f:?}");
        }
        // A random-ish large-stride walk mostly misses the open row.
        let feats = profile_stage(
            &|i, s| s.indirect((i as u64).wrapping_mul(0x9E3779B97F4A7C15) % (1 << 30)),
            4096,
            2,
        );
        for f in &feats {
            assert!(f.est_row_hit_rate < 0.5, "{f:?}");
        }
    }

    #[test]
    fn reuse_filter_suppresses_hot_line_misses() {
        // All accesses to one line: only the first interval records a miss.
        let feats = profile_stage(&|_i, s| s.stream(64), 1000, 2);
        assert!(feats[0].est_mpki > 0.0);
        assert_eq!(feats[1].est_mpki, 0.0);
    }
}
