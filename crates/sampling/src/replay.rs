//! Window planning, parallel replay, and weighted reconstitution.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use dx100_common::stats::{Ratio, RunningAverage};
use dx100_common::Checkpoint;
use dx100_core::MemoryImage;
use dx100_cpu::{CoreOp, OpStream};
use dx100_sim::{Driver, DriverStatus, RunStats, System, SystemCheckpoint};

use crate::kmeans::{kmeans, normalize, representatives, salted_seed};
use crate::profile::profile_stage;
use crate::SampledRun;

/// Target number of profiling intervals per stage.
const TARGET_INTERVALS: usize = 48;
/// Minimum work items per interval: below this, per-window transients
/// (pipeline fill, accelerator offload setup) dominate the measurement and
/// bias the reconstituted cycle count, so small stages get fewer, larger
/// windows — degenerating to one whole-stage window for tiny runs.
const MIN_INTERVAL_ITEMS: usize = 8192;
/// Maximum clusters per stage.
const MAX_CLUSTERS: usize = 8;
/// Representatives simulated per cluster (two, so within-cluster spread
/// yields a sampling-error estimate).
const REPS_PER_CLUSTER: usize = 2;
/// Warmup work items simulated (outside the ROI) before each window, as a
/// fraction of the window size. A window at the very start of a stage is
/// instead warmed with the tail of the *previous* stage, approximating the
/// cache state the full run carries across the phase boundary.
const WARMUP_FRACTION: usize = 2; // window / 2

/// One selected window of one stage, with its reconstitution weight.
#[derive(Debug, Clone, Copy)]
pub struct IntervalPlan {
    /// Stage index within the kernel.
    pub stage: usize,
    /// First work item of the ROI window (inclusive).
    pub lo: usize,
    /// Past-the-end work item of the ROI window.
    pub hi: usize,
    /// First warmup item (`warm_lo..lo` runs outside the ROI).
    pub warm_lo: usize,
    /// Weight: this window's stats × `factor` estimates its cluster's
    /// share of the full stage.
    pub factor: f64,
    /// Cluster this window represents.
    pub cluster: usize,
    /// Representatives its cluster has (for the error estimate).
    pub cluster_reps: usize,
}

/// The selected windows for one kernel × mode.
#[derive(Debug, Clone)]
pub struct SamplePlan {
    /// Windows to simulate in detail.
    pub windows: Vec<IntervalPlan>,
    /// Total profiled intervals across stages (denominator for the
    /// "intervals simulated / total" report line).
    pub total_intervals: usize,
}

/// Profiles, clusters, and selects representative windows for `run`.
/// Deterministic in `seed` and `salt` (use the kernel × mode name).
pub fn plan(run: &SampledRun, seed: u64, salt: &str) -> SamplePlan {
    let mut windows = Vec::new();
    let mut total_intervals = 0;
    for (si, stage) in run.stages.iter().enumerate() {
        let intervals = TARGET_INTERVALS
            .min(stage.items / MIN_INTERVAL_ITEMS)
            .clamp(1, stage.items.max(1));
        let per = stage.items.div_ceil(intervals);
        let feats = profile_stage(&*stage.access, stage.items, intervals);
        total_intervals += feats.len();
        let mut points: Vec<Vec<f64>> = feats.iter().map(|f| f.as_point()).collect();
        normalize(&mut points);
        let k = MAX_CLUSTERS.min(points.len());
        let assign = kmeans(
            &points,
            k,
            salted_seed(seed, &format!("{salt}/{}", stage.name)),
        );
        let reps = representatives(&points, &assign, REPS_PER_CLUSTER);
        let n = feats.len();
        for &(interval, cluster) in &reps {
            let lo = (interval * per).min(stage.items);
            let hi = ((interval + 1) * per).min(stage.items);
            if hi <= lo {
                continue; // degenerate empty window; nothing to simulate
            }
            let members = assign.iter().filter(|&&c| c == cluster).count();
            let cluster_reps = reps.iter().filter(|(_, c)| *c == cluster).count();
            // Items this cluster covers, split evenly over its reps,
            // relative to the items this window actually simulates.
            let cluster_items: usize = (0..n)
                .filter(|&i| assign[i] == cluster)
                .map(|i| ((i + 1) * per).min(stage.items).saturating_sub(i * per))
                .sum();
            debug_assert!(members >= cluster_reps);
            let factor = cluster_items as f64 / (cluster_reps as f64 * (hi - lo) as f64);
            let warm = (hi - lo) / WARMUP_FRACTION;
            windows.push(IntervalPlan {
                stage: si,
                lo,
                hi,
                warm_lo: lo.saturating_sub(warm),
                factor,
                cluster: cluster + si * MAX_CLUSTERS, // stage-unique cluster ids
                cluster_reps,
            });
        }
    }
    SamplePlan {
        windows,
        total_intervals,
    }
}

/// Stream id for functional cache-warming sweeps; distinct from any kernel
/// stream so warming does not perturb per-stream prefetcher training.
const WARM_STREAM: u32 = 97;

/// Dependency-free line-strided load stream used to pull a stage's
/// cache-resident arrays into the hierarchy before a window replays.
struct StrideSweep {
    addr: u64,
    step: u64,
    remaining: u64,
}

impl OpStream for StrideSweep {
    fn next_op(&mut self) -> Option<CoreOp> {
        if self.remaining == 0 {
            return None;
        }
        // Stores, not loads: the kernels *write* their resident arrays
        // (histogram RMWs, scatter accumulation), so in the full run these
        // lines sit dirty in the hierarchy. Warming them clean would make
        // replayed accelerator snoops and evictions cheaper than reality.
        let op = CoreOp::store(self.addr, WARM_STREAM);
        self.addr += self.step;
        self.remaining -= 1;
        Some(op)
    }
}

/// One range's warming sweep: the first `lines` cache lines of the range,
/// touched sequentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct WarmSweep {
    base: u64,
    lines: u64,
}

/// The expected residency of a stage's arrays at item `lo`: after
/// `t = prior_touches + lo` uniformly random touches of a range with `L`
/// lines, the full run has cached `L·(1−e^(−t/L))` distinct lines — capped
/// at `cap_lines` lines actually retainable (see [`replay_window`]). The
/// warmed fraction is quantized to quarters — coarse, but it keys the
/// warmed-checkpoint cache, so windows deep into a stage (coverage ≈ 1)
/// all share one warm simulation. The warmed lines are a *contiguous
/// prefix* of the range: in reality they are a random subset, but for a
/// uniformly-random access pattern only the warmed line *count* affects
/// the hit probability, and a sequential sweep distributes evenly over
/// cache sets (a strided sweep concentrates into a subset of sets and
/// measurably fails to retain). Ranges the full run has barely touched
/// stay cold.
fn warm_plan(ranges: &[crate::Resident], lo: usize, dx100: bool, cap_lines: u64) -> Vec<WarmSweep> {
    let mut sweeps = Vec::new();
    for r in ranges {
        let total = r.bytes.div_ceil(64);
        // In DX100 runs the engines execute the stage, and their accesses
        // only allocate LLC lines on the host-resident H-bit path; without
        // it the array's residency is whatever the cores left behind.
        let during = if dx100 && !r.host_resident {
            0
        } else {
            lo as u64
        };
        let t = (r.prior_touches + during) as f64;
        let coverage = 1.0 - (-t / total as f64).exp();
        let coverage = coverage.min(cap_lines as f64 / total as f64);
        let quarters = (coverage * 4.0).round() as u64;
        if quarters == 0 {
            continue;
        }
        sweeps.push(WarmSweep {
            base: r.base,
            lines: (total * quarters.min(4)) / 4,
        });
    }
    sweeps
}

/// Installs warming sweeps, each interleaved across cores (core `c`
/// touches the sweep's lines `c, c+cores, ...`).
fn install_resident(sys: &mut System, sweeps: &[WarmSweep]) {
    let cores = sys.num_cores() as u64;
    for s in sweeps {
        for c in 0..cores {
            let n = s.lines.saturating_sub(c).div_ceil(cores);
            if n > 0 {
                sys.push_stream(
                    c as usize,
                    StrideSweep {
                        addr: s.base + c * 64,
                        step: cores * 64,
                        remaining: n,
                    },
                );
            }
        }
    }
}

/// Runs `sweeps` to drain on a fresh restore of `run`'s checkpoint.
struct WarmDriver<'a> {
    sweeps: &'a [WarmSweep],
    installed: bool,
}

impl Driver for WarmDriver<'_> {
    fn poll(&mut self, sys: &mut System) -> DriverStatus {
        if !sys.cores_idle() {
            return DriverStatus::Running;
        }
        if !self.installed {
            self.installed = true;
            install_resident(sys, self.sweeps);
            return DriverStatus::Running;
        }
        DriverStatus::Done
    }
}

/// Simulates `sweeps` from the run's cycle-0 checkpoint and snapshots the
/// warmed system.
fn warmed_checkpoint(run: &SampledRun, sweeps: &[WarmSweep]) -> SystemCheckpoint {
    let mut sys = System::new(run.cfg.clone(), MemoryImage::default());
    sys.restore(&run.checkpoint);
    sys.run(&mut WarmDriver {
        sweeps,
        installed: false,
    });
    sys.save()
        .expect("a drained warmed system is always saveable")
}

/// Cache of warmed checkpoints for one kernel × mode's window replays,
/// keyed by the quantized warming plan. Windows deep into a stage share a
/// plan, so each distinct warm state is simulated once — not once per
/// window, which would cost more than sampling saves.
#[derive(Default)]
pub struct WarmCache {
    map: Mutex<HashMap<Vec<WarmSweep>, Arc<SystemCheckpoint>>>,
}

impl WarmCache {
    fn get(&self, run: &SampledRun, sweeps: Vec<WarmSweep>) -> Arc<SystemCheckpoint> {
        if let Some(ck) = self.map.lock().unwrap().get(&sweeps) {
            return ck.clone();
        }
        // Built outside the lock: workers racing on the same key waste a
        // duplicate simulation (deterministic, so the results are
        // identical) but never serialize on it.
        let ck = Arc::new(warmed_checkpoint(run, &sweeps));
        self.map.lock().unwrap().entry(sweeps).or_insert(ck).clone()
    }
}

/// Phased driver for one window replay: warmup installs (outside the ROI,
/// each drained), then the ROI window, drain, ROI end.
struct WindowDriver<'a> {
    run: &'a SampledRun,
    /// `(stage, lo, hi)` item ranges to install in order; the last one is
    /// the measured ROI window, everything before it is warmup.
    installs: Vec<(usize, usize, usize)>,
    next: usize,
    roi_open: bool,
}

impl Driver for WindowDriver<'_> {
    fn poll(&mut self, sys: &mut System) -> DriverStatus {
        if !sys.cores_idle() {
            return DriverStatus::Running;
        }
        if self.next < self.installs.len() {
            let (si, lo, hi) = self.installs[self.next];
            if self.next + 1 == self.installs.len() {
                sys.roi_begin();
                self.roi_open = true;
            }
            (self.run.stages[si].install)(sys, lo, hi);
            self.next += 1;
            return DriverStatus::Running;
        }
        if self.roi_open {
            sys.roi_end();
            self.roi_open = false;
        }
        DriverStatus::Done
    }
}

/// Replays one planned window on a fresh system and returns the ROI
/// statistics. The system starts from the run's cycle-0 checkpoint — or,
/// when the window's stage declares cache-resident arrays, from a warmed
/// checkpoint matching the residency the full run reaches by the window's
/// position (functional cache warming, as in SMARTS; item-range warmup
/// cannot recover this state because each item touches *different* random
/// lines).
///
/// Warm residency is capped by what the hierarchy can retain: baseline
/// cores back the shared LLC with private L1/L2s and constantly refill it
/// with their own demand misses, so they hold the full modeled coverage;
/// the DX100 engines' H-bit path has only the LLC behind it, and its
/// allocations churn against their own evictions. The quarter-LLC
/// effective retention was calibrated once against the full-fidelity IS
/// run at default scale (the only H-bit workload; measured end states
/// bracket it: cold replay overshoots full-run cycles by ~31%, full-LLC
/// warming undershoots by ~37%).
pub fn replay_window(run: &SampledRun, plan: IntervalPlan, warm: &WarmCache) -> RunStats {
    let mut sys = System::new(run.cfg.clone(), MemoryImage::default());
    let dx100 = run.cfg.dx100.is_some();
    let llc_lines = run.cfg.hierarchy.llc.size_bytes / 64;
    let cap_lines = if dx100 { llc_lines / 4 } else { u64::MAX };
    let sweeps = warm_plan(&run.stages[plan.stage].resident, plan.lo, dx100, cap_lines);
    if sweeps.is_empty() {
        sys.restore(&run.checkpoint);
    } else {
        sys.restore(&warm.get(run, sweeps));
    }
    let mut installs = Vec::new();
    // A window at the head of a stage inherits no same-stage warmup; warm
    // it with the previous stage's tail instead, approximating the cache
    // and row-buffer state the full run carries across phase boundaries.
    if plan.lo == 0 && plan.stage > 0 {
        let prev = plan.stage - 1;
        let pitems = run.stages[prev].items;
        let w = (plan.hi - plan.lo).min(pitems);
        if w > 0 {
            installs.push((prev, pitems - w, pitems));
        }
    }
    if plan.warm_lo < plan.lo {
        installs.push((plan.stage, plan.warm_lo, plan.lo));
    }
    installs.push((plan.stage, plan.lo, plan.hi));
    let mut driver = WindowDriver {
        run,
        installs,
        next: 0,
        roi_open: false,
    };
    sys.run(&mut driver)
}

// ---------------------------------------------------------------------------
// Parallel task execution
// ---------------------------------------------------------------------------

/// Runs `tasks` on a deterministic worker pool; re-exported from
/// [`dx100_common::pool`], where the full-fidelity bench sweep shares it.
pub use dx100_common::pool::run_parallel;

// ---------------------------------------------------------------------------
// Weighted reconstitution
// ---------------------------------------------------------------------------

fn su(acc: &mut u64, v: u64, f: f64) {
    *acc += (v as f64 * f).round() as u64;
}

fn scale_merge_avg(acc: &mut RunningAverage, v: &RunningAverage, f: f64) {
    acc.merge_scaled(v, f);
}

fn scale_merge_ratio(acc: &mut Ratio, v: &Ratio, f: f64) {
    acc.merge_scaled(v, f);
}

/// Folds `s` into `acc` with every counter scaled by `factor`, so that the
/// sum over all windows of `stats × factor` estimates the full run.
pub fn scale_merge(acc: &mut RunStats, s: &RunStats, f: f64) {
    su(&mut acc.cycles, s.cycles, f);
    su(&mut acc.instructions, s.instructions, f);

    let c = &mut acc.core;
    su(&mut c.cycles, s.core.cycles, f);
    su(&mut c.instructions, s.core.instructions, f);
    su(&mut c.spin_instructions, s.core.spin_instructions, f);
    su(&mut c.mem_ops_issued, s.core.mem_ops_issued, f);
    su(&mut c.wait_cycles, s.core.wait_cycles, f);
    su(&mut c.stall_rob_full, s.core.stall_rob_full, f);
    su(&mut c.stall_lq_full, s.core.stall_lq_full, f);
    su(&mut c.stall_sq_full, s.core.stall_sq_full, f);
    su(&mut c.stall_fence, s.core.stall_fence, f);
    scale_merge_avg(&mut c.rob_occupancy, &s.core.rob_occupancy, f);
    scale_merge_avg(&mut c.lq_occupancy, &s.core.lq_occupancy, f);

    let d = &mut acc.dram;
    su(&mut d.ticks, s.dram.ticks, f);
    su(&mut d.data_busy_ticks, s.dram.data_busy_ticks, f);
    su(&mut d.reads, s.dram.reads, f);
    su(&mut d.writes, s.dram.writes, f);
    su(&mut d.activates, s.dram.activates, f);
    su(&mut d.precharges, s.dram.precharges, f);
    su(&mut d.refreshes, s.dram.refreshes, f);
    scale_merge_ratio(&mut d.row_hits_misses, &s.dram.row_hits_misses, f);
    scale_merge_avg(&mut d.occupancy, &s.dram.occupancy, f);
    scale_merge_avg(&mut d.queue_latency, &s.dram.queue_latency, f);
    acc.dram_channels = s.dram_channels;

    for (al, sl) in [
        (&mut acc.hierarchy.l1, &s.hierarchy.l1),
        (&mut acc.hierarchy.l2, &s.hierarchy.l2),
        (&mut acc.hierarchy.llc, &s.hierarchy.llc),
    ] {
        su(&mut al.demand_hits, sl.demand_hits, f);
        su(&mut al.demand_misses, sl.demand_misses, f);
        su(&mut al.mshr_coalesced, sl.mshr_coalesced, f);
        su(&mut al.mshr_full_stalls, sl.mshr_full_stalls, f);
        su(&mut al.prefetch_issued, sl.prefetch_issued, f);
        su(&mut al.prefetch_useful, sl.prefetch_useful, f);
        su(&mut al.writebacks_received, sl.writebacks_received, f);
        su(&mut al.dx100_accesses, sl.dx100_accesses, f);
        su(&mut al.dx100_hits, sl.dx100_hits, f);
    }

    if let Some(sx) = &s.dx100 {
        let ax = acc.dx100.get_or_insert_with(Default::default);
        su(&mut ax.instructions_retired, sx.instructions_retired, f);
        su(&mut ax.elements_processed, sx.elements_processed, f);
        su(&mut ax.stream_line_requests, sx.stream_line_requests, f);
        su(&mut ax.indirect_line_reads, sx.indirect_line_reads, f);
        su(&mut ax.indirect_line_writes, sx.indirect_line_writes, f);
        su(&mut ax.condition_skips, sx.condition_skips, f);
        su(&mut ax.words_coalesced, sx.words_coalesced, f);
        su(&mut ax.snoop_hits, sx.snoop_hits, f);
        su(&mut ax.snoop_misses, sx.snoop_misses, f);
        su(&mut ax.reqbuf_stall_cycles, sx.reqbuf_stall_cycles, f);
        su(&mut ax.rowtable_stall_cycles, sx.rowtable_stall_cycles, f);
        su(&mut ax.tlb_hits, sx.tlb_hits, f);
        su(&mut ax.tlb_misses, sx.tlb_misses, f);
        su(
            &mut ax.coherency_invalidations,
            sx.coherency_invalidations,
            f,
        );
    }
    su(&mut acc.dmp_prefetches, s.dmp_prefetches, f);
}

/// Per-metric relative sampling-error estimates, from the within-cluster
/// spread of each cluster's representatives (standard error of the
/// weighted-cluster estimator).
///
/// Clusters with a single representative have no measurable spread of
/// their own; they borrow the pooled relative variance of the
/// multi-representative clusters as a conservative stand-in. When *no*
/// cluster has two or more representatives there is nothing to pool, the
/// reported errors are a lower bound (zero), and [`lower_bound`] is set
/// so downstream reports can say so instead of claiming perfect accuracy.
///
/// [`lower_bound`]: SamplingErrors::lower_bound
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplingErrors {
    /// Relative standard error of the reconstituted cycle count (this
    /// bounds the speedup error when both sides are sampled).
    pub cycles: f64,
    /// Relative standard error of the row-buffer hit rate.
    pub row_buffer_hit_rate: f64,
    /// Relative standard error of LLC MPKI.
    pub llc_mpki: f64,
    /// True when every cluster had exactly one representative: no
    /// within-cluster spread was observable anywhere, so the error
    /// fields understate the true sampling error.
    pub lower_bound: bool,
}

/// A reconstituted full-run estimate plus its error bars.
#[derive(Debug, Clone)]
pub struct ReconstitutedRun {
    /// Weighted full-run statistics estimate.
    pub stats: RunStats,
    /// Per-metric relative standard errors.
    pub errors: SamplingErrors,
    /// Windows simulated in detail.
    pub windows: usize,
    /// Intervals profiled in total.
    pub total_intervals: usize,
}

/// Combines per-window replay stats into a weighted full-run estimate.
pub fn reconstitute(plan: &SamplePlan, results: &[RunStats]) -> ReconstitutedRun {
    assert_eq!(plan.windows.len(), results.len());
    let mut stats = RunStats::default();
    for (w, r) in plan.windows.iter().zip(results) {
        scale_merge(&mut stats, r, w.factor);
    }
    // Whether any cluster has two or more representatives is a property
    // of the plan, not of the metric: with none, every per-metric error
    // below degenerates to zero and must be labeled a lower bound.
    let mut members: BTreeMap<usize, usize> = BTreeMap::new();
    for w in &plan.windows {
        *members.entry(w.cluster).or_default() += 1;
    }
    let lower_bound = !members.values().any(|&n| n >= 2);
    let errors = SamplingErrors {
        cycles: metric_rel_stderr(plan, results, |r| r.cycles as f64),
        row_buffer_hit_rate: metric_rel_stderr(plan, results, |r| r.row_buffer_hit_rate()),
        llc_mpki: metric_rel_stderr(plan, results, |r| r.llc_mpki()),
        lower_bound,
    };
    ReconstitutedRun {
        stats,
        errors,
        windows: plan.windows.len(),
        total_intervals: plan.total_intervals,
    }
}

/// Relative standard error of the weighted estimate of `metric`: per
/// cluster, the sample variance across that cluster's representatives,
/// propagated through the cluster weights
/// (`stderr² = Σ_c w_c² · s_c² / n_c`, relative to the weighted mean).
///
/// Singleton clusters (one representative) have `s_c²` unobservable; they
/// borrow the degrees-of-freedom-pooled *relative* variance of the
/// multi-representative clusters, scaled back by their own mean — a
/// conservative stand-in that assumes they are no better behaved than the
/// clusters whose spread we could measure. With no multi-representative
/// clusters at all the pooled term is zero and the result is a lower
/// bound (flagged via [`SamplingErrors::lower_bound`]).
fn metric_rel_stderr(
    plan: &SamplePlan,
    results: &[RunStats],
    metric: impl Fn(&RunStats) -> f64,
) -> f64 {
    // BTreeMap, not HashMap: iterating below fixes the float summation
    // order, which is part of the byte-identical report contract — a
    // hash-seeded order would let the same sweep print different
    // low-order error digits run to run.
    let mut clusters: BTreeMap<usize, (f64, Vec<f64>)> = BTreeMap::new();
    for (w, r) in plan.windows.iter().zip(results) {
        let e = clusters.entry(w.cluster).or_insert((0.0, Vec::new()));
        e.0 += w.factor;
        e.1.push(metric(r));
    }
    let (mut pooled_num, mut pooled_dof) = (0.0, 0.0);
    for (_, vals) in clusters.values() {
        let n = vals.len() as f64;
        if vals.len() < 2 {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / n;
        if mean.abs() < 1e-12 {
            continue;
        }
        let s2 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        pooled_num += s2 / (mean * mean) * (n - 1.0);
        pooled_dof += n - 1.0;
    }
    let pooled_rel2 = if pooled_dof > 0.0 {
        pooled_num / pooled_dof
    } else {
        0.0
    };
    let mut total = 0.0;
    let mut var = 0.0;
    for (weight, vals) in clusters.values() {
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        total += weight * mean;
        let s2 = if vals.len() > 1 {
            vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            pooled_rel2 * mean * mean
        };
        var += weight * weight * s2 / n;
    }
    if total.abs() < 1e-12 {
        0.0
    } else {
        var.sqrt() / total.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_merge_scales_counters_and_preserves_means() {
        let mut s = RunStats {
            cycles: 1000,
            instructions: 4000,
            ..RunStats::default()
        };
        s.dram.reads = 100;
        for _ in 0..30 {
            s.dram.row_hits_misses.hit();
        }
        for _ in 0..10 {
            s.dram.row_hits_misses.miss();
        }
        s.dram.occupancy.sample(8.0);
        s.dram.occupancy.sample(8.0);
        let mut acc = RunStats::default();
        scale_merge(&mut acc, &s, 2.5);
        assert_eq!(acc.cycles, 2500);
        assert_eq!(acc.instructions, 10000);
        assert_eq!(acc.dram.reads, 250);
        assert_eq!(acc.dram.row_hits_misses.hits(), 75);
        assert!((acc.row_buffer_hit_rate() - 0.75).abs() < 1e-12);
        assert!((acc.dram.occupancy.mean() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn reconstitute_weights_clusters_and_reports_spread() {
        // Two clusters: cluster 0 (weight 2× per rep, two reps), cluster 1
        // (one rep at factor 4).
        let mk = |cycles: u64| RunStats {
            cycles,
            instructions: cycles,
            ..RunStats::default()
        };
        let plan = SamplePlan {
            windows: vec![
                IntervalPlan {
                    stage: 0,
                    lo: 0,
                    hi: 10,
                    warm_lo: 0,
                    factor: 2.0,
                    cluster: 0,
                    cluster_reps: 2,
                },
                IntervalPlan {
                    stage: 0,
                    lo: 20,
                    hi: 30,
                    warm_lo: 18,
                    factor: 2.0,
                    cluster: 0,
                    cluster_reps: 2,
                },
                IntervalPlan {
                    stage: 0,
                    lo: 40,
                    hi: 50,
                    warm_lo: 38,
                    factor: 4.0,
                    cluster: 1,
                    cluster_reps: 1,
                },
            ],
            total_intervals: 8,
        };
        let results = vec![mk(100), mk(120), mk(50)];
        let rec = reconstitute(&plan, &results);
        assert_eq!(rec.stats.cycles, 2 * 100 + 2 * 120 + 4 * 50);
        assert_eq!(rec.windows, 3);
        assert_eq!(rec.total_intervals, 8);
        // Cluster 0's two reps disagree → non-zero cycle error; and it is
        // a *relative* error well under 100%.
        assert!(rec.errors.cycles > 0.0);
        assert!(rec.errors.cycles < 0.5);
        // A multi-representative cluster exists, so the estimate is a
        // proper standard error, not a lower bound.
        assert!(!rec.errors.lower_bound);

        // The singleton cluster 1 borrows cluster 0's pooled relative
        // variance instead of contributing zero. Check the exact value
        // (cluster weights are the summed factors, 4 each):
        //   cluster 0: mean 110, s² = 200, rel² = 200/110²
        //   cluster 1: s² = rel² · 50²
        //   stderr² = 4²·200/2 + 4²·(rel²·50²)/1, total = 640.
        let pooled_rel2 = 200.0 / (110.0f64 * 110.0);
        let expected = (16.0 * 200.0 / 2.0 + 16.0 * pooled_rel2 * 2500.0).sqrt() / 640.0;
        assert!(
            (rec.errors.cycles - expected).abs() < 1e-12,
            "{} != {expected}",
            rec.errors.cycles
        );
    }

    #[test]
    fn all_singleton_clusters_report_a_lower_bound() {
        let mk = |cycles: u64| RunStats {
            cycles,
            instructions: cycles,
            ..RunStats::default()
        };
        let plan = SamplePlan {
            windows: vec![
                IntervalPlan {
                    stage: 0,
                    lo: 0,
                    hi: 10,
                    warm_lo: 0,
                    factor: 3.0,
                    cluster: 0,
                    cluster_reps: 1,
                },
                IntervalPlan {
                    stage: 0,
                    lo: 20,
                    hi: 30,
                    warm_lo: 18,
                    factor: 5.0,
                    cluster: 1,
                    cluster_reps: 1,
                },
            ],
            total_intervals: 8,
        };
        let rec = reconstitute(&plan, &[mk(100), mk(70)]);
        // No cluster has measurable spread: the error fields degenerate to
        // zero and must be flagged as a lower bound, not silently reported
        // as a perfect estimate.
        assert_eq!(rec.errors.cycles, 0.0);
        assert!(rec.errors.lower_bound);
    }
}
