//! Checkpointed, sampled simulation with parallel interval replay.
//!
//! Full fidelity runs simulate every work item of every kernel phase
//! cycle-by-cycle; that makes figure sweeps the dominant wall-clock cost of
//! the reproduction. This crate implements the standard sampled-simulation
//! recipe (SimPoint-style interval clustering over memory-access-vector
//! features, as in "Memory Access Vectors: Improving Sampling Fidelity for
//! CPU Performance Simulations"), adapted to this simulator's
//! driver-installed work-item model:
//!
//! 1. A kernel exposes its phases as [`SampledStage`]s: a total work-item
//!    count, a cheap *functional* access model used for profiling, and an
//!    `install` closure that programs any contiguous item window onto a
//!    restored [`System`].
//! 2. The [interval profiler](profile::profile_stage) walks the functional
//!    access model once, diffing cumulative counters at interval boundaries
//!    (the same `interval_*` helpers `dx100-sim`'s epoch sampler uses) into
//!    per-interval feature vectors: indirect-access density, estimated
//!    row-buffer hit rate, estimated MPKI, and indirect ops per
//!    kilo-instruction (a DX100 queue-pressure proxy).
//! 3. A dependency-free [k-means pass](kmeans) clusters the intervals and
//!    picks up to two representatives per cluster, each weighted by the
//!    work items its cluster covers.
//! 4. The [replay driver](replay) restores the kernel's [`SystemCheckpoint`]
//!    into per-thread `System` instances, simulates each selected window in
//!    detail (with a warmup prefix excluded from the ROI), and
//!    [reconstitutes](replay::reconstitute) weighted full-run [`RunStats`],
//!    with a per-metric sampling-error estimate from the within-cluster
//!    spread of the representatives.
//!
//! Checkpoints are taken once per kernel × machine configuration at cycle 0,
//! after all functional setup (memory image, DMP patterns, host-resident
//! pages, DX100 PTEs) but before any timed work: the kernels' address
//! streams are driven by index arrays fixed at build time, so any window of
//! any stage replays from that single checkpoint with correct timing even
//! though the values earlier stages would have written are absent.

pub mod kmeans;
pub mod profile;
pub mod replay;

use std::sync::Arc;

use dx100_sim::{System, SystemCheckpoint, SystemConfig};

pub use profile::{AccessSink, FeatureVec};
pub use replay::{
    plan, reconstitute, replay_window, run_parallel, scale_merge, IntervalPlan, ReconstitutedRun,
    SamplePlan, SamplingErrors, WarmCache,
};

/// Functional access model of a [`SampledStage`]: reports item `i`'s
/// memory behaviour to the sink.
pub type AccessFn = Box<dyn Fn(usize, &mut AccessSink) + Send + Sync>;

/// Installer of a [`SampledStage`]: programs items `[lo, hi)` onto a
/// restored system. Shared across replay threads.
pub type InstallFn = Arc<dyn Fn(&mut System, usize, usize) + Send + Sync>;

/// One kernel phase, described for sampled replay.
pub struct SampledStage {
    /// Stage name (for reports; e.g. `"hist"`).
    pub name: &'static str,
    /// Total work items in the stage (the unit `install` windows over).
    pub items: usize,
    /// Functional access model: report item `i`'s memory behaviour to the
    /// sink. Must be cheap — it runs once per item during profiling.
    pub access: AccessFn,
    /// Programs items `[lo, hi)` onto a restored system. If this stage's
    /// *addresses* depended on values an earlier stage wrote, the installer
    /// would also have to apply those functional effects to the image
    /// first; the current kernels' address streams all derive from index
    /// arrays fixed at build time, so none do. Shared across replay
    /// threads, and called at most twice per replay (warmup + ROI window).
    pub install: InstallFn,
    /// Arrays this stage accesses with reuse (e.g. IS's histogram), which
    /// the full run progressively pulls into the cache hierarchy. Replay
    /// restores from a cycle-0 checkpoint with cold caches, and item-range
    /// warmup cannot recover this state — each warmup item touches
    /// *different* random lines of the array. Instead, the replay driver
    /// warms each range before the warmup/ROI installs (functional cache
    /// warming, as in SMARTS), to the residency the full run would have
    /// reached by the window's position. Empty for streaming stages.
    pub resident: Vec<Resident>,
}

/// A cache-resident array range of a [`SampledStage`], for functional
/// warming during window replay.
///
/// The stage is assumed to touch one uniformly random line of the range
/// per work item (the kernels' indirect patterns); together with
/// `prior_touches`, that lets the replayer estimate how much of the range
/// the full run has cached by any window's start — the expected distinct
/// lines after `t` random touches of `L` lines, `L·(1−e^(−t/L))` — and
/// warm a contiguous prefix of that size (for a uniformly-random access
/// pattern only the warmed line count affects the hit probability).
#[derive(Debug, Clone, Copy)]
pub struct Resident {
    /// Base address of the range.
    pub base: u64,
    /// Range length in bytes.
    pub bytes: u64,
    /// Touches the range received from the *cores* before this stage's
    /// first item (earlier phases writing or sweeping it); 0 if the stage
    /// starts it cold.
    pub prior_touches: u64,
    /// Whether DX100 runs mark this range host-resident
    /// ([`System::mark_host_resident`]): H-bit accesses route via the LLC
    /// and allocate, so the accelerator's own touches during the stage
    /// build residency just like core touches do. Without the H-bit the
    /// engines bypass the LLC and never allocate, so in DX100 runs only
    /// `prior_touches` count toward this range's warmth.
    pub host_resident: bool,
}

/// A kernel × mode prepared for sampled simulation.
pub struct SampledRun {
    /// Machine configuration replay systems are built with.
    pub cfg: SystemConfig,
    /// Cycle-0 post-setup checkpoint every window restores from.
    pub checkpoint: Arc<SystemCheckpoint>,
    /// The functional result checksum (sampling skips timed verification,
    /// but the functional reference is still computed at prepare time).
    pub checksum: u64,
    /// The kernel's phases, in execution order.
    pub stages: Vec<SampledStage>,
}
