//! Dependency-free k-means over interval feature vectors.
//!
//! Features are z-score normalized per dimension, centroids are seeded with
//! a deterministic SplitMix64 stream (k-means++-style farthest-point
//! spreading), and Lloyd iterations run to convergence or a small fixed
//! bound. Everything is deterministic in the seed, independent of thread
//! count, so sampled runs are bit-reproducible.

/// SplitMix64: a tiny, high-quality 64-bit PRNG (public-domain algorithm).
/// Used for k-means initialization so the crate needs no RNG dependency.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Derives a stable seed for a named sampling decision (kernel × stage) from
/// the user's run seed, by hashing the salt string through SplitMix64.
pub fn salted_seed(seed: u64, salt: &str) -> u64 {
    let mut s = SplitMix64(seed ^ 0xA076_1D64_78BD_642F);
    for b in salt.bytes() {
        s.0 ^= b as u64;
        s.next_u64();
    }
    s.next_u64()
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Z-score normalizes each dimension in place (constant dimensions become
/// all-zero rather than NaN).
pub fn normalize(points: &mut [Vec<f64>]) {
    if points.is_empty() {
        return;
    }
    let dims = points[0].len();
    let n = points.len() as f64;
    for d in 0..dims {
        let mean = points.iter().map(|p| p[d]).sum::<f64>() / n;
        let var = points.iter().map(|p| (p[d] - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        for p in points.iter_mut() {
            p[d] = if sd > 1e-12 { (p[d] - mean) / sd } else { 0.0 };
        }
    }
}

/// Clusters `points` into `k` groups; returns each point's cluster index.
/// `k` is clamped to `points.len()`. Deterministic in `seed`.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> Vec<usize> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let mut rng = SplitMix64(seed);

    // Farthest-point (k-means++-style) seeding: first centroid random, each
    // subsequent one the point farthest from its nearest centroid.
    let mut centroids: Vec<Vec<f64>> = vec![points[rng.below(n)].clone()];
    while centroids.len() < k {
        let far = (0..n)
            .max_by(|&a, &b| {
                let da = centroids
                    .iter()
                    .map(|c| dist2(&points[a], c))
                    .fold(f64::MAX, f64::min);
                let db = centroids
                    .iter()
                    .map(|c| dist2(&points[b], c))
                    .fold(f64::MAX, f64::min);
                da.total_cmp(&db)
            })
            .unwrap();
        centroids.push(points[far].clone());
    }

    let dims = points[0].len();
    let mut assign = vec![0usize; n];
    for _ in 0..64 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| dist2(p, &centroids[a]).total_cmp(&dist2(p, &centroids[b])))
                .unwrap();
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f64>> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| assign[*i] == c)
                .map(|(_, p)| p)
                .collect();
            if members.is_empty() {
                continue; // empty cluster keeps its old centroid
            }
            for d in 0..dims {
                centroid[d] = members.iter().map(|p| p[d]).sum::<f64>() / members.len() as f64;
            }
        }
    }
    assign
}

/// Picks up to `max_reps` representative members per cluster: the members
/// closest to the cluster's mean point. Returns `(point_index, cluster)`
/// pairs sorted by point index.
pub fn representatives(
    points: &[Vec<f64>],
    assign: &[usize],
    max_reps: usize,
) -> Vec<(usize, usize)> {
    let k = assign.iter().copied().max().map_or(0, |m| m + 1);
    let dims = if points.is_empty() {
        0
    } else {
        points[0].len()
    };
    let mut reps = Vec::new();
    for c in 0..k {
        let members: Vec<usize> = (0..points.len()).filter(|&i| assign[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let mut mean = vec![0.0; dims];
        for &m in &members {
            for d in 0..dims {
                mean[d] += points[m][d];
            }
        }
        for v in &mut mean {
            *v /= members.len() as f64;
        }
        let mut by_dist = members.clone();
        by_dist.sort_by(|&a, &b| {
            dist2(&points[a], &mean)
                .total_cmp(&dist2(&points[b], &mean))
                .then(a.cmp(&b))
        });
        for &m in by_dist.iter().take(max_reps) {
            reps.push((m, c));
        }
    }
    reps.sort_unstable();
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + i as f64 * 0.01, 0.0]);
            pts.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        normalize(&mut pts);
        let assign = kmeans(&pts, 2, 7);
        // All even indices together, all odd indices together, groups differ.
        assert!(assign.iter().step_by(2).all(|&c| c == assign[0]));
        assert!(assign.iter().skip(1).step_by(2).all(|&c| c == assign[1]));
        assert_ne!(assign[0], assign[1]);
    }

    #[test]
    fn kmeans_is_seed_deterministic() {
        let pts: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        assert_eq!(kmeans(&pts, 4, 99), kmeans(&pts, 4, 99));
    }

    #[test]
    fn representatives_capped_and_sorted() {
        let pts: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64]).collect();
        let assign = kmeans(&pts, 3, 1);
        let reps = representatives(&pts, &assign, 2);
        assert!(reps.len() <= 6);
        assert!(reps.windows(2).all(|w| w[0].0 < w[1].0));
        // Every cluster that exists is represented.
        for c in assign.iter() {
            assert!(reps.iter().any(|(_, rc)| rc == c));
        }
    }
}
