//! DX100 engine statistics.

/// Counters for one DX100 instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dx100Stats {
    /// Instructions retired.
    pub instructions_retired: u64,
    /// Total elements processed across all instructions.
    pub elements_processed: u64,
    /// Line requests issued by the stream unit (to the LLC).
    pub stream_line_requests: u64,
    /// Indirect line reads issued (DRAM + LLC).
    pub indirect_line_reads: u64,
    /// Indirect line writes issued (IST/IRMW write-backs).
    pub indirect_line_writes: u64,
    /// Indirect words gated off by condition tiles.
    pub condition_skips: u64,
    /// Words coalesced into an already-pending column (saved line requests).
    pub words_coalesced: u64,
    /// Fill-stage snoops that found the line cached (H bit set).
    pub snoop_hits: u64,
    /// Fill-stage snoops that missed everywhere.
    pub snoop_misses: u64,
    /// Cycles the request generator stalled on a full DRAM request buffer.
    pub reqbuf_stall_cycles: u64,
    /// Cycles the fill stage stalled on Row Table capacity.
    pub rowtable_stall_cycles: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (each stalls the fill stage).
    pub tlb_misses: u64,
    /// Scratchpad lines invalidated from host caches by the coherency agent.
    pub coherency_invalidations: u64,
}

impl Dx100Stats {
    /// Mean words served per indirect line read — the coalescing factor
    /// (≥ 1.0; higher is better).
    pub fn coalescing_factor(&self) -> f64 {
        if self.indirect_line_reads == 0 {
            0.0
        } else {
            let words = self.indirect_line_reads + self.words_coalesced;
            words as f64 / self.indirect_line_reads as f64
        }
    }

    /// Folds another instance's counters into this one.
    pub fn merge(&mut self, other: &Dx100Stats) {
        self.instructions_retired += other.instructions_retired;
        self.elements_processed += other.elements_processed;
        self.stream_line_requests += other.stream_line_requests;
        self.indirect_line_reads += other.indirect_line_reads;
        self.indirect_line_writes += other.indirect_line_writes;
        self.condition_skips += other.condition_skips;
        self.words_coalesced += other.words_coalesced;
        self.snoop_hits += other.snoop_hits;
        self.snoop_misses += other.snoop_misses;
        self.reqbuf_stall_cycles += other.reqbuf_stall_cycles;
        self.rowtable_stall_cycles += other.rowtable_stall_cycles;
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
        self.coherency_invalidations += other.coherency_invalidations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_factor_math() {
        let s = Dx100Stats {
            indirect_line_reads: 10,
            words_coalesced: 30,
            ..Default::default()
        };
        assert!((s.coalescing_factor() - 4.0).abs() < 1e-12);
        assert_eq!(Dx100Stats::default().coalescing_factor(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = Dx100Stats {
            instructions_retired: 1,
            indirect_line_reads: 5,
            ..Default::default()
        };
        a.merge(&Dx100Stats {
            instructions_retired: 2,
            indirect_line_reads: 7,
            ..Default::default()
        });
        assert_eq!(a.instructions_retired, 3);
        assert_eq!(a.indirect_line_reads, 12);
    }
}
