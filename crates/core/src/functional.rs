//! The functional execution model: instructions execute immediately and
//! completely, against a [`MemoryImage`].
//!
//! This is the reproduction of the paper's functional simulator ("A
//! functional simulator for DX100 APIs was developed to ensure the
//! correctness of the implementations before simulation", Section 5). Every
//! workload's DX100 path is validated against it, and the timed
//! [`crate::engine::Dx100Engine`] is property-tested to produce bit-identical
//! results.

use std::fmt;

use dx100_common::{value, Cycle};
#[cfg(test)]
use dx100_common::{AluOp, DType};

use crate::config::Dx100Config;
use crate::isa::{IllegalInstruction, Instruction, RegId, TileId};
use crate::memimg::MemoryImage;
use crate::regfile::RegFile;
use crate::scratchpad::{Scratchpad, Tile};

/// Errors surfaced while executing an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The instruction violates an ISA rule.
    Illegal(IllegalInstruction),
    /// A source tile's length has not been announced by any producer.
    SourceLenUnknown(TileId),
    /// The instruction would produce more elements than a tile holds.
    TileOverflow {
        /// Tile that would overflow.
        tile: TileId,
        /// Elements the instruction tried to produce.
        needed: usize,
        /// Tile capacity.
        capacity: usize,
    },
    /// Source tiles of a two-source operation have mismatched lengths.
    LengthMismatch(TileId, TileId),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Illegal(e) => write!(f, "illegal instruction: {e}"),
            ExecError::SourceLenUnknown(t) => write!(f, "source tile {t} has no announced length"),
            ExecError::TileOverflow {
                tile,
                needed,
                capacity,
            } => write!(
                f,
                "tile {tile} overflow: needs {needed}, capacity {capacity}"
            ),
            ExecError::LengthMismatch(a, b) => write!(f, "length mismatch between {a} and {b}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<IllegalInstruction> for ExecError {
    fn from(e: IllegalInstruction) -> Self {
        ExecError::Illegal(e)
    }
}

/// The functional DX100: a scratchpad and register file executing
/// instructions synchronously.
#[derive(Clone, Debug)]
pub struct FunctionalDx100 {
    config: Dx100Config,
    spd: Scratchpad,
    regs: RegFile,
    instructions_executed: u64,
    elements_processed: u64,
}

impl FunctionalDx100 {
    /// Creates a functional instance with `config`'s scratchpad geometry.
    pub fn new(config: Dx100Config) -> Self {
        FunctionalDx100 {
            spd: Scratchpad::new(config.num_tiles, config.tile_elems),
            regs: RegFile::new(),
            instructions_executed: 0,
            elements_processed: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &Dx100Config {
        &self.config
    }

    /// Shared view of a tile.
    pub fn tile(&self, id: TileId) -> &Tile {
        self.spd.tile(id)
    }

    /// Writes a whole tile from the host side (core → scratchpad stores).
    pub fn write_tile(&mut self, id: TileId, values: &[u64]) {
        self.spd.write_tile(id, values);
    }

    /// Writes a scalar register (core → register-file store).
    pub fn write_reg(&mut self, id: RegId, v: u64) {
        self.regs.write(id, v);
    }

    /// Reads a scalar register.
    pub fn read_reg(&self, id: RegId) -> u64 {
        self.regs.read(id)
    }

    /// Instructions executed so far.
    pub fn instructions_executed(&self) -> u64 {
        self.instructions_executed
    }

    /// Total elements processed across all instructions (offload volume).
    pub fn elements_processed(&self) -> u64 {
        self.elements_processed
    }

    /// Executes one instruction to completion.
    ///
    /// # Errors
    /// Returns an [`ExecError`] on ISA violations, unannounced source
    /// lengths, or tile overflow. On error the machine state is unchanged
    /// except possibly the destination tile's not-ready mark.
    pub fn execute(&mut self, instr: &Instruction, mem: &mut MemoryImage) -> Result<(), ExecError> {
        instr.validate()?;
        self.instructions_executed += 1;
        let processed = execute_on(&mut self.spd, &self.regs, instr, mem)?;
        self.elements_processed += processed as u64;
        Ok(())
    }

    /// Executes a whole program in order.
    ///
    /// # Errors
    /// Stops at and returns the first failing instruction's error.
    pub fn run(&mut self, program: &[Instruction], mem: &mut MemoryImage) -> Result<(), ExecError> {
        for instr in program {
            self.execute(instr, mem)?;
        }
        Ok(())
    }
}

/// Reads the per-lane condition for index `i` (true = execute).
fn cond_at(spd: &Scratchpad, tc: Option<TileId>, i: usize) -> bool {
    match tc {
        None => true,
        Some(t) => spd.tile(t).get(i) != 0,
    }
}

/// Shared instruction semantics, used verbatim by the functional model and
/// as the reference the timed engine must reproduce element-wise.
///
/// Returns the number of elements processed.
pub(crate) fn execute_on(
    spd: &mut Scratchpad,
    regs: &RegFile,
    instr: &Instruction,
    mem: &mut MemoryImage,
) -> Result<usize, ExecError> {
    let src_len = |spd: &Scratchpad, t: TileId| -> Result<usize, ExecError> {
        spd.tile(t).len().ok_or(ExecError::SourceLenUnknown(t))
    };
    match *instr {
        Instruction::Sld {
            dtype,
            base,
            td,
            rs1,
            rs2,
            rs3,
            tc,
        } => {
            let (start, stride, count) = (regs.read(rs1), regs.read(rs2), regs.read(rs3) as usize);
            check_capacity(spd, td, count)?;
            spd.begin_produce(td, count);
            for i in 0..count {
                if cond_at(spd, tc, i) {
                    let idx = start + i as u64 * stride;
                    let v = mem.read(dtype, base + idx * dtype.size_bytes());
                    spd.produce(td, i, v);
                } else {
                    spd.skip(td, i);
                }
            }
            spd.set_ready(td);
            Ok(count)
        }
        Instruction::Sst {
            dtype,
            base,
            ts,
            rs1,
            rs2,
            rs3,
            tc,
        } => {
            let (start, stride, count) = (regs.read(rs1), regs.read(rs2), regs.read(rs3) as usize);
            for i in 0..count {
                if cond_at(spd, tc, i) {
                    let idx = start + i as u64 * stride;
                    let v = value::truncate(dtype, spd.tile(ts).get(i));
                    mem.write(dtype, base + idx * dtype.size_bytes(), v);
                }
            }
            Ok(count)
        }
        Instruction::Ild {
            dtype,
            base,
            td,
            ts1,
            tc,
        } => {
            let n = src_len(spd, ts1)?;
            check_capacity(spd, td, n)?;
            spd.begin_produce(td, n);
            for i in 0..n {
                if cond_at(spd, tc, i) {
                    let idx = spd.tile(ts1).get(i);
                    let v = mem.read(dtype, base + idx * dtype.size_bytes());
                    spd.produce(td, i, v);
                } else {
                    spd.skip(td, i);
                }
            }
            spd.set_ready(td);
            Ok(n)
        }
        Instruction::Ist {
            dtype,
            base,
            ts1,
            ts2,
            tc,
        } => {
            let n = src_len(spd, ts1)?;
            for i in 0..n {
                if cond_at(spd, tc, i) {
                    let idx = spd.tile(ts1).get(i);
                    let v = value::truncate(dtype, spd.tile(ts2).get(i));
                    mem.write(dtype, base + idx * dtype.size_bytes(), v);
                }
            }
            Ok(n)
        }
        Instruction::Irmw {
            dtype,
            op,
            base,
            ts1,
            ts2,
            tc,
        } => {
            let n = src_len(spd, ts1)?;
            for i in 0..n {
                if cond_at(spd, tc, i) {
                    let idx = spd.tile(ts1).get(i);
                    let addr = base + idx * dtype.size_bytes();
                    let old = mem.read(dtype, addr);
                    let new = value::alu(op, dtype, old, spd.tile(ts2).get(i));
                    mem.write(dtype, addr, new);
                }
            }
            Ok(n)
        }
        Instruction::Aluv {
            dtype,
            op,
            td,
            ts1,
            ts2,
            tc,
        } => {
            let n = src_len(spd, ts1)?;
            let n2 = src_len(spd, ts2)?;
            if n != n2 {
                return Err(ExecError::LengthMismatch(ts1, ts2));
            }
            check_capacity(spd, td, n)?;
            spd.begin_produce(td, n);
            for i in 0..n {
                if cond_at(spd, tc, i) {
                    let v = value::alu(op, dtype, spd.tile(ts1).get(i), spd.tile(ts2).get(i));
                    spd.produce(td, i, v);
                } else {
                    spd.skip(td, i);
                }
            }
            spd.set_ready(td);
            Ok(n)
        }
        Instruction::Alus {
            dtype,
            op,
            td,
            ts,
            rs,
            tc,
        } => {
            let n = src_len(spd, ts)?;
            check_capacity(spd, td, n)?;
            let scalar = regs.read(rs);
            spd.begin_produce(td, n);
            for i in 0..n {
                if cond_at(spd, tc, i) {
                    let v = value::alu(op, dtype, spd.tile(ts).get(i), scalar);
                    spd.produce(td, i, v);
                } else {
                    spd.skip(td, i);
                }
            }
            spd.set_ready(td);
            Ok(n)
        }
        Instruction::Rng {
            td1,
            td2,
            ts1,
            ts2,
            rs1,
            tc,
        } => {
            let n = src_len(spd, ts1)?;
            let n2 = src_len(spd, ts2)?;
            if n != n2 {
                return Err(ExecError::LengthMismatch(ts1, ts2));
            }
            let budget = (regs.read(rs1) as usize).min(spd.capacity());
            spd.begin_produce_unsized(td1);
            spd.begin_produce_unsized(td2);
            let mut out = 0usize;
            for k in 0..n {
                if !cond_at(spd, tc, k) {
                    continue;
                }
                let lo = spd.tile(ts1).get(k);
                let hi = spd.tile(ts2).get(k);
                let mut j = lo;
                while j < hi {
                    if out >= budget {
                        return Err(ExecError::TileOverflow {
                            tile: td1,
                            needed: out + 1,
                            capacity: budget,
                        });
                    }
                    spd.produce(td1, out, k as u64);
                    spd.produce(td2, out, j);
                    out += 1;
                    j += 1;
                }
            }
            spd.set_len(td1, out);
            spd.set_len(td2, out);
            spd.set_ready(td1);
            spd.set_ready(td2);
            Ok(out)
        }
    }
}

fn check_capacity(spd: &Scratchpad, tile: TileId, needed: usize) -> Result<(), ExecError> {
    if needed > spd.capacity() {
        Err(ExecError::TileOverflow {
            tile,
            needed,
            capacity: spd.capacity(),
        })
    } else {
        Ok(())
    }
}

/// A retired-instruction notification shared with the timed engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Handle returned by `push_instruction`.
    pub handle: u64,
    /// Completion cycle (timed model) or 0 (functional).
    pub at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx100_common::value::{from_f32, to_f32};

    fn setup() -> (FunctionalDx100, MemoryImage) {
        let mut cfg = Dx100Config::paper();
        cfg.tile_elems = 64;
        (FunctionalDx100::new(cfg), MemoryImage::new())
    }

    const T0: TileId = TileId::new(0);
    const T1: TileId = TileId::new(1);
    const T2: TileId = TileId::new(2);
    const T3: TileId = TileId::new(3);
    const R0: RegId = RegId::new(0);
    const R1: RegId = RegId::new(1);
    const R2: RegId = RegId::new(2);

    #[test]
    fn gather_matches_reference() {
        let (mut dx, mut mem) = setup();
        let a = mem.alloc("A", DType::U32, 32);
        let b = mem.alloc("B", DType::U32, 16);
        for i in 0..32 {
            mem.write_elem(a, i, 1000 + i);
        }
        let idx: Vec<u64> = (0..16).map(|i| (i * 7) % 32).collect();
        for (i, v) in idx.iter().enumerate() {
            mem.write_elem(b, i as u64, *v);
        }
        dx.write_reg(R0, 0);
        dx.write_reg(R1, 1);
        dx.write_reg(R2, 16);
        dx.run(
            &[
                Instruction::sld(DType::U32, b.base(), T0, R0, R1, R2),
                Instruction::ild(DType::U32, a.base(), T1, T0),
            ],
            &mut mem,
        )
        .unwrap();
        let expect: Vec<u64> = idx.iter().map(|&i| 1000 + i).collect();
        assert_eq!(dx.tile(T1).valid(), &expect[..]);
    }

    #[test]
    fn scatter_and_rmw() {
        let (mut dx, mut mem) = setup();
        let a = mem.alloc("A", DType::U32, 16);
        dx.write_tile(T0, &[3, 7, 3]); // indices (3 twice!)
        dx.write_tile(T1, &[10, 20, 30]);
        dx.execute(&Instruction::ist(DType::U32, a.base(), T0, T1), &mut mem)
            .unwrap();
        // Duplicate index: the later lane wins (sequential semantics).
        assert_eq!(mem.read_elem(a, 3), 30);
        assert_eq!(mem.read_elem(a, 7), 20);
        dx.execute(
            &Instruction::irmw(DType::U32, AluOp::Add, a.base(), T0, T1),
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read_elem(a, 3), 30 + 10 + 30);
        assert_eq!(mem.read_elem(a, 7), 40);
    }

    #[test]
    fn conditional_store_skips_lanes() {
        let (mut dx, mut mem) = setup();
        let a = mem.alloc("A", DType::U32, 8);
        dx.write_tile(T0, &[1, 2, 3]);
        dx.write_tile(T1, &[11, 22, 33]);
        dx.write_tile(T2, &[1, 0, 1]); // condition
        dx.execute(
            &Instruction::ist(DType::U32, a.base(), T0, T1).with_condition(T2),
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read_elem(a, 1), 11);
        assert_eq!(mem.read_elem(a, 2), 0, "gated lane must not store");
        assert_eq!(mem.read_elem(a, 3), 33);
    }

    #[test]
    fn alu_vector_and_scalar() {
        let (mut dx, mut mem) = setup();
        dx.write_tile(T0, &[1, 2, 3, 4]);
        dx.write_tile(T1, &[10, 20, 30, 40]);
        dx.execute(
            &Instruction::Aluv {
                dtype: DType::U32,
                op: AluOp::Add,
                td: T2,
                ts1: T0,
                ts2: T1,
                tc: None,
            },
            &mut mem,
        )
        .unwrap();
        assert_eq!(dx.tile(T2).valid(), &[11, 22, 33, 44]);
        dx.write_reg(R0, 25);
        dx.execute(
            &Instruction::Alus {
                dtype: DType::U32,
                op: AluOp::Ge,
                td: T3,
                ts: T1,
                rs: R0,
                tc: None,
            },
            &mut mem,
        )
        .unwrap();
        assert_eq!(dx.tile(T3).valid(), &[0, 0, 1, 1]);
    }

    #[test]
    fn float_rmw_accumulates() {
        let (mut dx, mut mem) = setup();
        let a = mem.alloc("A", DType::F32, 4);
        dx.write_tile(T0, &[2, 2, 2]);
        dx.write_tile(T1, &[from_f32(1.5), from_f32(2.0), from_f32(0.25)]);
        dx.execute(
            &Instruction::irmw(DType::F32, AluOp::Add, a.base(), T0, T1),
            &mut mem,
        )
        .unwrap();
        assert_eq!(to_f32(mem.read_elem(a, 2)), 3.75);
    }

    #[test]
    fn range_fuser_flattens_ranges() {
        let (mut dx, mut mem) = setup();
        dx.write_tile(T0, &[0, 5, 9]); // lows
        dx.write_tile(T1, &[2, 5, 12]); // highs (middle range empty)
        dx.write_reg(R0, 64);
        dx.execute(
            &Instruction::Rng {
                td1: T2,
                td2: T3,
                ts1: T0,
                ts2: T1,
                rs1: R0,
                tc: None,
            },
            &mut mem,
        )
        .unwrap();
        assert_eq!(dx.tile(T2).valid(), &[0, 0, 2, 2, 2]);
        assert_eq!(dx.tile(T3).valid(), &[0, 1, 9, 10, 11]);
    }

    #[test]
    fn range_fuser_overflow_detected() {
        let (mut dx, mut mem) = setup();
        dx.write_tile(T0, &[0]);
        dx.write_tile(T1, &[1000]); // way past the 64-element tile
        dx.write_reg(R0, 1000);
        let err = dx
            .execute(
                &Instruction::Rng {
                    td1: T2,
                    td2: T3,
                    ts1: T0,
                    ts2: T1,
                    rs1: R0,
                    tc: None,
                },
                &mut mem,
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::TileOverflow { .. }));
    }

    #[test]
    fn unknown_source_length_rejected() {
        let (mut dx, mut mem) = setup();
        let a = mem.alloc("A", DType::U32, 8);
        let err = dx
            .execute(&Instruction::ild(DType::U32, a.base(), T1, T0), &mut mem)
            .unwrap_err();
        assert_eq!(err, ExecError::SourceLenUnknown(T0));
    }

    #[test]
    fn illegal_rmw_rejected() {
        let (mut dx, mut mem) = setup();
        dx.write_tile(T0, &[0]);
        dx.write_tile(T1, &[1]);
        let err = dx
            .execute(
                &Instruction::irmw(DType::U32, AluOp::Mul, 4096, T0, T1),
                &mut mem,
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::Illegal(_)));
    }

    #[test]
    fn strided_stream_load() {
        let (mut dx, mut mem) = setup();
        let a = mem.alloc("A", DType::U64, 32);
        for i in 0..32 {
            mem.write_elem(a, i, i * 100);
        }
        dx.write_reg(R0, 4); // start
        dx.write_reg(R1, 3); // stride
        dx.write_reg(R2, 5); // count
        dx.execute(
            &Instruction::sld(DType::U64, a.base(), T0, R0, R1, R2),
            &mut mem,
        )
        .unwrap();
        assert_eq!(dx.tile(T0).valid(), &[400, 700, 1000, 1300, 1600]);
    }
}
