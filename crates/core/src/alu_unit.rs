//! The ALU unit: 16-lane elementwise arithmetic/comparison over tiles,
//! with per-element chaining on source finish bits.

use std::collections::VecDeque;

use dx100_common::value;

use crate::controller::DispatchedInstr;
use crate::functional::ExecError;
use crate::isa::{Instruction, TileId};
use crate::scratchpad::Scratchpad;

#[derive(Clone, Debug)]
struct AluJob {
    d: DispatchedInstr,
    next: usize,
    n: Option<usize>,
}

/// The timed ALU unit.
#[derive(Clone, Debug)]
pub struct AluUnit {
    queue: VecDeque<AluJob>,
    lanes: usize,
}

impl AluUnit {
    /// Creates a unit with `lanes` parallel lanes.
    pub fn new(lanes: usize) -> Self {
        AluUnit {
            queue: VecDeque::new(),
            lanes,
        }
    }

    /// Accepts a dispatched ALUV/ALUS instruction.
    pub fn enqueue(&mut self, d: DispatchedInstr) {
        self.queue.push_back(AluJob {
            d,
            next: 0,
            n: None,
        });
    }

    /// Whether no job is queued or executing.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the next `step` would be a pure no-op given frozen scratchpad
    /// state (used by the engine's quiescence check).
    pub fn quiescent(&self, spd: &Scratchpad) -> bool {
        let Some(job) = self.queue.front() else {
            return true;
        };
        let (ts1, ts2, tc) = match job.d.instr {
            Instruction::Aluv { ts1, ts2, tc, .. } => (ts1, Some(ts2), tc),
            Instruction::Alus { ts, tc, .. } => (ts, None, tc),
            _ => return false,
        };
        match job.n {
            // Sizing waits only while a source length is unknown.
            None => {
                spd.tile(ts1).len().is_none() || ts2.is_some_and(|t| spd.tile(t).len().is_none())
            }
            // Chained execution waits only on an unfinished source element.
            Some(n) => job.next < n && !sources_finished(spd, job.next, ts1, ts2, tc),
        }
    }

    /// Processes up to `lanes` elements of the head job. Returns the handle
    /// of a job that finished this cycle.
    ///
    /// # Errors
    /// Propagates source-length mismatches as [`ExecError`].
    pub fn step(&mut self, spd: &mut Scratchpad) -> Result<Option<u64>, ExecError> {
        let Some(job) = self.queue.front_mut() else {
            return Ok(None);
        };
        let (dtype, op, td, ts1, ts2, tc) = match job.d.instr {
            Instruction::Aluv {
                dtype,
                op,
                td,
                ts1,
                ts2,
                tc,
            } => (dtype, op, td, Some(ts1), Some(ts2), tc),
            Instruction::Alus {
                dtype,
                op,
                td,
                ts,
                tc,
                ..
            } => (dtype, op, td, Some(ts), None, tc),
            ref other => unreachable!("non-ALU instruction {other:?} routed to ALU unit"),
        };
        let ts1 = ts1.expect("ALU always has a first source");
        // Announce the destination length as soon as the sources are sized.
        if job.n.is_none() {
            let Some(n1) = spd.tile(ts1).len() else {
                return Ok(None);
            };
            if let Some(t2) = ts2 {
                let Some(n2) = spd.tile(t2).len() else {
                    return Ok(None);
                };
                if n1 != n2 {
                    return Err(ExecError::LengthMismatch(ts1, t2));
                }
            }
            if n1 > spd.capacity() {
                return Err(ExecError::TileOverflow {
                    tile: td,
                    needed: n1,
                    capacity: spd.capacity(),
                });
            }
            job.n = Some(n1);
            spd.set_len(td, n1);
        }
        let n = job.n.unwrap();
        let scalar = job.d.r1;
        for _ in 0..self.lanes {
            if job.next >= n {
                break;
            }
            let i = job.next;
            if !sources_finished(spd, i, ts1, ts2, tc) {
                break;
            }
            let gated = tc.is_some_and(|c| spd.tile(c).get(i) == 0);
            if gated {
                spd.skip(td, i);
            } else {
                let a = spd.tile(ts1).get(i);
                let b = match ts2 {
                    Some(t2) => spd.tile(t2).get(i),
                    None => scalar,
                };
                spd.produce(td, i, value::alu(op, dtype, a, b));
            }
            job.next += 1;
        }
        if job.next >= n {
            let handle = job.d.handle;
            self.queue.pop_front();
            return Ok(Some(handle));
        }
        Ok(None)
    }
}

fn sources_finished(
    spd: &Scratchpad,
    i: usize,
    ts1: TileId,
    ts2: Option<TileId>,
    tc: Option<TileId>,
) -> bool {
    spd.tile(ts1).finished(i)
        && ts2.is_none_or(|t| spd.tile(t).finished(i))
        && tc.is_none_or(|t| spd.tile(t).finished(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx100_common::{AluOp, DType};

    const T0: TileId = TileId::new(0);
    const T1: TileId = TileId::new(1);
    const T2: TileId = TileId::new(2);

    fn dispatch(instr: Instruction, scalar: u64) -> DispatchedInstr {
        DispatchedInstr {
            handle: 1,
            instr,
            r1: scalar,
            r2: 0,
            r3: 0,
            flag: None,
        }
    }

    #[test]
    fn vector_add_completes_at_lane_rate() {
        let mut spd = Scratchpad::new(4, 64);
        spd.write_tile(T0, &(0..40u64).collect::<Vec<_>>());
        spd.write_tile(T1, &[5u64; 40]);
        let mut alu = AluUnit::new(16);
        spd.begin_produce_unsized(T2);
        alu.enqueue(dispatch(
            Instruction::Aluv {
                dtype: DType::U64,
                op: AluOp::Add,
                td: T2,
                ts1: T0,
                ts2: T1,
                tc: None,
            },
            0,
        ));
        // 40 elements at 16 lanes → 3 steps.
        assert_eq!(alu.step(&mut spd).unwrap(), None);
        assert_eq!(alu.step(&mut spd).unwrap(), None);
        assert_eq!(alu.step(&mut spd).unwrap(), Some(1));
        assert_eq!(spd.tile(T2).get(39), 44);
    }

    #[test]
    fn chaining_waits_for_unfinished_sources() {
        let mut spd = Scratchpad::new(4, 16);
        // T0 is being produced by another (simulated) unit.
        spd.begin_produce(T0, 4);
        spd.produce(T0, 0, 100);
        // element 1 not yet finished
        let mut alu = AluUnit::new(16);
        spd.begin_produce_unsized(T1);
        alu.enqueue(dispatch(
            Instruction::Alus {
                dtype: DType::U64,
                op: AluOp::Add,
                td: T1,
                ts: T0,
                rs: crate::isa::RegId::new(0),
                tc: None,
            },
            7,
        ));
        assert_eq!(alu.step(&mut spd).unwrap(), None);
        assert!(spd.tile(T1).finished(0));
        assert!(!spd.tile(T1).finished(1), "must stall on unfinished source");
        // Producer catches up.
        for i in 1..4 {
            spd.produce(T0, i, 100 + i as u64);
        }
        assert_eq!(alu.step(&mut spd).unwrap(), Some(1));
        assert_eq!(spd.tile(T1).get(3), 110);
    }

    #[test]
    fn mismatched_lengths_error() {
        let mut spd = Scratchpad::new(4, 16);
        spd.write_tile(T0, &[1, 2, 3]);
        spd.write_tile(T1, &[1, 2]);
        let mut alu = AluUnit::new(4);
        alu.enqueue(dispatch(
            Instruction::Aluv {
                dtype: DType::U32,
                op: AluOp::Add,
                td: T2,
                ts1: T0,
                ts2: T1,
                tc: None,
            },
            0,
        ));
        assert!(matches!(
            alu.step(&mut spd),
            Err(ExecError::LengthMismatch(_, _))
        ));
    }
}
