//! The Controller: instruction reception, scoreboard, dispatch, and retire
//! (paper Section 3.5).
//!
//! Instructions dispatch in order, but only when none of their *destination*
//! tiles are in use by an in-flight instruction (WAW/WAR without renaming).
//! Source tiles may still be in flight as another instruction's destination:
//! per-element finish bits let consumers chase producers element by element,
//! which is how an `ILD` overlaps the `SLD` that fetches its index tile.

use std::collections::VecDeque;

use dx100_common::flags::FlagId;

use crate::isa::{Instruction, TileId};

/// An instruction with its scalar register operands resolved at reception
/// time (the register file is read when the instruction arrives, so drivers
/// may reuse registers for later instructions).
#[derive(Debug, Clone)]
pub struct DispatchedInstr {
    /// Monotonic handle identifying this instruction.
    pub handle: u64,
    /// The decoded instruction.
    pub instr: Instruction,
    /// Resolved `rs1` (start / budget / scalar), per-instruction meaning.
    pub r1: u64,
    /// Resolved `rs2` (stride).
    pub r2: u64,
    /// Resolved `rs3` (count).
    pub r3: u64,
    /// Flag to set when this instruction retires (the `wait` API).
    pub flag: Option<FlagId>,
}

/// Which functional unit executes an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Stream Access unit (SLD/SST).
    Stream,
    /// Indirect Access unit (ILD/IST/IRMW).
    Indirect,
    /// ALU unit (ALUV/ALUS).
    Alu,
    /// Range Fuser (RNG).
    Range,
}

/// Unit selection for an instruction.
pub fn unit_of(instr: &Instruction) -> Unit {
    match instr {
        Instruction::Sld { .. } | Instruction::Sst { .. } => Unit::Stream,
        Instruction::Ild { .. } | Instruction::Ist { .. } | Instruction::Irmw { .. } => {
            Unit::Indirect
        }
        Instruction::Aluv { .. } | Instruction::Alus { .. } => Unit::Alu,
        Instruction::Rng { .. } => Unit::Range,
    }
}

#[derive(Clone, Debug)]
struct Inflight {
    handle: u64,
    sources: Vec<TileId>,
    dests: Vec<TileId>,
    flag: Option<FlagId>,
}

/// The dispatch queue and scoreboard.
#[derive(Clone, Debug, Default)]
pub struct Controller {
    queue: VecDeque<DispatchedInstr>,
    inflight: Vec<Inflight>,
}

impl Controller {
    /// Creates an empty controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts a received instruction into the dispatch queue.
    pub fn receive(&mut self, d: DispatchedInstr) {
        self.queue.push_back(d);
    }

    /// Whether an instruction's destination tiles are free of hazards.
    fn can_dispatch(&self, instr: &Instruction) -> bool {
        let dests = instr.dest_tiles();
        dests.iter().all(|d| {
            self.inflight
                .iter()
                .all(|f| !f.dests.contains(d) && !f.sources.contains(d))
        })
    }

    /// Whether the queue head could dispatch right now (non-mutating probe
    /// used by the engine's quiescence check).
    pub fn dispatchable(&self) -> bool {
        self.queue
            .front()
            .is_some_and(|head| self.can_dispatch(&head.instr))
    }

    /// Dispatches the queue head if the scoreboard allows. Returns the
    /// instruction to hand to its unit.
    pub fn try_dispatch(&mut self) -> Option<DispatchedInstr> {
        let head = self.queue.front()?;
        if !self.can_dispatch(&head.instr) {
            return None;
        }
        let d = self.queue.pop_front().unwrap();
        self.inflight.push(Inflight {
            handle: d.handle,
            sources: d.instr.source_tiles(),
            dests: d.instr.dest_tiles(),
            flag: d.flag,
        });
        Some(d)
    }

    /// Retires `handle`: releases its scoreboard entry. Returns the
    /// instruction's destination tiles and completion flag.
    ///
    /// # Panics
    /// Panics if the handle is not in flight.
    pub fn retire(&mut self, handle: u64) -> (Vec<TileId>, Option<FlagId>) {
        let idx = self
            .inflight
            .iter()
            .position(|f| f.handle == handle)
            .expect("retiring unknown instruction");
        let f = self.inflight.swap_remove(idx);
        (f.dests, f.flag)
    }

    /// Queued (not yet dispatched) instructions.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Dispatched, unretired instructions.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Whether nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx100_common::DType;

    fn d(handle: u64, instr: Instruction) -> DispatchedInstr {
        DispatchedInstr {
            handle,
            instr,
            r1: 0,
            r2: 0,
            r3: 0,
            flag: None,
        }
    }

    const T0: TileId = TileId::new(0);
    const T1: TileId = TileId::new(1);
    const T2: TileId = TileId::new(2);

    #[test]
    fn chaining_allowed_waw_blocked() {
        let mut c = Controller::new();
        // ILD t1 <- [t0]; then ALU-free consumer writing t2 from t1 is
        // allowed to dispatch (t1 is only its *source*).
        c.receive(d(1, Instruction::ild(DType::U32, 0x1000, T1, T0)));
        c.receive(d(
            2,
            Instruction::Aluv {
                dtype: DType::U32,
                op: dx100_common::AluOp::Add,
                td: T2,
                ts1: T1,
                ts2: T1,
                tc: None,
            },
        ));
        // A third instruction overwriting t1 must wait for instruction 1
        // (WAW) and 2 (WAR).
        c.receive(d(3, Instruction::ild(DType::U32, 0x1000, T1, T2)));
        assert!(c.try_dispatch().is_some()); // 1 dispatches
        assert!(c.try_dispatch().is_some()); // 2 chains
        assert!(c.try_dispatch().is_none(), "WAW/WAR on t1 must block");
        c.retire(1);
        assert!(c.try_dispatch().is_none(), "instr 2 still reads t1");
        c.retire(2);
        assert!(c.try_dispatch().is_some());
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn in_order_dispatch() {
        let mut c = Controller::new();
        c.receive(d(1, Instruction::ild(DType::U32, 0, T1, T0)));
        c.receive(d(2, Instruction::ild(DType::U32, 0, T2, T0)));
        // Block the head by a conflicting in-flight instruction.
        c.receive(d(3, Instruction::ild(DType::U32, 0, T1, T2)));
        let first = c.try_dispatch().unwrap();
        assert_eq!(first.handle, 1);
        let second = c.try_dispatch().unwrap();
        assert_eq!(second.handle, 2);
        // Head (3) conflicts on t1 → nothing dispatches, even though no
        // later instruction exists.
        assert!(c.try_dispatch().is_none());
        assert_eq!(c.queued(), 1);
    }

    #[test]
    fn retire_returns_flag_and_dests() {
        let mut c = Controller::new();
        let mut instr = d(9, Instruction::ild(DType::U32, 0, T1, T0));
        instr.flag = Some(dx100_common::flags::FlagId(5));
        c.receive(instr);
        c.try_dispatch().unwrap();
        let (dests, flag) = c.retire(9);
        assert_eq!(dests, vec![T1]);
        assert_eq!(flag, Some(dx100_common::flags::FlagId(5)));
        assert!(c.is_idle());
    }

    #[test]
    fn unit_routing() {
        assert_eq!(
            unit_of(&Instruction::ild(DType::U32, 0, T1, T0)),
            Unit::Indirect
        );
        assert_eq!(
            unit_of(&Instruction::sld(
                DType::U32,
                0,
                T1,
                crate::isa::RegId::new(0),
                crate::isa::RegId::new(1),
                crate::isa::RegId::new(2)
            )),
            Unit::Stream
        );
        assert_eq!(
            unit_of(&Instruction::Rng {
                td1: T1,
                td2: T2,
                ts1: T0,
                ts2: T0,
                rs1: crate::isa::RegId::new(0),
                tc: None
            }),
            Unit::Range
        );
    }
}
