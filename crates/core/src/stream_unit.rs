//! The Stream Access unit: tile-granular streaming loads and stores through
//! the LLC (paper Section 3.3).
//!
//! Streaming accesses have high spatial locality, so they are injected into
//! the LLC via the Cache Interface. A Request-Table (MSHR-like, 128 entries)
//! tracks outstanding lines and coalesces the elements that share one.

use std::collections::{HashMap, VecDeque};

use dx100_common::{Addr, Cycle, DType, LineAddr, ReqId};

use crate::controller::DispatchedInstr;
use crate::engine::{IdAlloc, UnitTag};
use crate::isa::{Instruction, TileId};
use crate::memimg::MemoryImage;
use crate::ports::MemPorts;
use crate::scratchpad::Scratchpad;
use crate::stats::Dx100Stats;

#[derive(Clone, Debug)]
struct LineReq {
    elems: Vec<(usize, Addr)>,
    is_write: bool,
}

#[derive(Clone, Debug)]
struct StreamJob {
    d: DispatchedInstr,
    next: usize,
    produced: usize,
    skipped: usize,
    acked: usize,
    sized: bool,
    /// Write accumulation: the line currently being composed.
    current_write: Option<(LineAddr, Vec<(usize, Addr)>)>,
}

impl StreamJob {
    fn count(&self) -> usize {
        self.d.r3 as usize
    }

    fn fields(&self) -> (DType, Addr, Option<TileId>, Option<TileId>, Option<TileId>) {
        match self.d.instr {
            Instruction::Sld {
                dtype,
                base,
                td,
                tc,
                ..
            } => (dtype, base, Some(td), None, tc),
            Instruction::Sst {
                dtype,
                base,
                ts,
                tc,
                ..
            } => (dtype, base, None, Some(ts), tc),
            ref other => unreachable!("non-stream instruction {other:?} in stream unit"),
        }
    }

    fn done(&self) -> bool {
        let n = self.count();
        match self.d.instr {
            Instruction::Sld { .. } => self.next >= n && self.produced + self.skipped >= n,
            Instruction::Sst { .. } => {
                self.next >= n && self.acked + self.skipped >= n && self.current_write.is_none()
            }
            _ => unreachable!(),
        }
    }
}

/// The timed Stream Access unit.
#[derive(Clone, Debug)]
pub struct StreamUnit {
    rate: usize,
    table_cap: usize,
    queue: VecDeque<StreamJob>,
    outstanding: HashMap<ReqId, LineReq>,
    inflight_lines: HashMap<LineAddr, ReqId>,
}

impl StreamUnit {
    /// Creates a unit processing `rate` elements/cycle with a
    /// `table_cap`-entry Request Table.
    pub fn new(rate: usize, table_cap: usize) -> Self {
        StreamUnit {
            rate,
            table_cap,
            queue: VecDeque::new(),
            outstanding: HashMap::new(),
            inflight_lines: HashMap::new(),
        }
    }

    /// Accepts a dispatched SLD/SST.
    pub fn enqueue(&mut self, d: DispatchedInstr) {
        self.queue.push_back(StreamJob {
            d,
            next: 0,
            produced: 0,
            skipped: 0,
            acked: 0,
            sized: false,
            current_write: None,
        });
    }

    /// Whether no job or outstanding line remains.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.outstanding.is_empty()
    }

    /// Whether the next `step` would be a pure no-op given frozen scratchpad
    /// and response state (used by the engine's quiescence check).
    pub fn quiescent(&self, spd: &Scratchpad) -> bool {
        let Some(job) = self.queue.front() else {
            return true;
        };
        if !job.sized {
            return false; // step would size the destination tile
        }
        let (dtype, base, td, ts, tc) = job.fields();
        let count = job.count();
        if job.next >= count {
            // Only the final write flush (or retirement) remains.
            if job.current_write.is_some() {
                return self.outstanding.len() >= self.table_cap;
            }
            return !job.done();
        }
        let i = job.next;
        if tc.is_some_and(|c| !spd.tile(c).finished(i)) {
            return true; // chained on an unfinished condition element
        }
        if let Some(ts) = ts {
            if !spd.tile(ts).finished(i) {
                return true; // chained on an unfinished store value
            }
        }
        if tc.is_some_and(|c| spd.tile(c).get(i) == 0) {
            return false; // step would record a condition skip
        }
        let addr = base + (job.d.r1 + i as u64 * job.d.r2) * dtype.size_bytes();
        let line = LineAddr::containing(addr);
        match (td, ts) {
            // Load: coalescing onto an in-flight line is progress; otherwise
            // only a full Request Table blocks the element.
            (Some(_), None) => {
                !self.inflight_lines.contains_key(&line) && self.outstanding.len() >= self.table_cap
            }
            // Store: a full table blocks only the flush of a completed line;
            // composing onto the current line is always progress.
            (None, Some(_)) => {
                job.current_write.as_ref().is_some_and(|(l, _)| *l != line)
                    && self.outstanding.len() >= self.table_cap
            }
            _ => false,
        }
    }

    /// Processes up to `rate` elements of the head job.
    pub fn step(
        &mut self,
        now: Cycle,
        spd: &mut Scratchpad,
        mem: &mut MemoryImage,
        ports: &mut dyn MemPorts,
        ids: &mut IdAlloc,
        stats: &mut Dx100Stats,
    ) -> Option<u64> {
        let job = self.queue.front_mut()?;
        let (dtype, base, td, ts, tc) = job.fields();
        let count = job.count();
        if !job.sized {
            if let Some(td) = td {
                // A count beyond capacity is a driver bug; surface loudly.
                assert!(count <= spd.capacity(), "SLD count exceeds tile capacity");
                spd.set_len(td, count);
            }
            job.sized = true;
        }
        let (start, stride) = (job.d.r1, job.d.r2);
        let esize = dtype.size_bytes();
        for _ in 0..self.rate {
            if job.next >= count {
                break;
            }
            let i = job.next;
            // Gate on the condition tile (and for stores, the value tile).
            if tc.is_some_and(|c| !spd.tile(c).finished(i)) {
                break;
            }
            if let Some(ts) = ts {
                if !spd.tile(ts).finished(i) {
                    break;
                }
            }
            let gated = tc.is_some_and(|c| spd.tile(c).get(i) == 0);
            let addr = base + (start + i as u64 * stride) * esize;
            let line = LineAddr::containing(addr);
            match (td, ts) {
                // Streaming load.
                (Some(td), None) => {
                    if gated {
                        spd.skip(td, i);
                        job.skipped += 1;
                        job.next += 1;
                        stats.condition_skips += 1;
                        continue;
                    }
                    if let Some(&rid) = self.inflight_lines.get(&line) {
                        self.outstanding
                            .get_mut(&rid)
                            .expect("inflight line without request")
                            .elems
                            .push((i, addr));
                        job.next += 1;
                        continue;
                    }
                    if self.outstanding.len() >= self.table_cap {
                        break; // Request Table full: structural stall.
                    }
                    let rid = ids.alloc(UnitTag::Stream);
                    self.outstanding.insert(
                        rid,
                        LineReq {
                            elems: vec![(i, addr)],
                            is_write: false,
                        },
                    );
                    self.inflight_lines.insert(line, rid);
                    ports.llc_request(rid, line, false, now);
                    stats.stream_line_requests += 1;
                    job.next += 1;
                }
                // Streaming store.
                (None, Some(ts)) => {
                    if gated {
                        job.skipped += 1;
                        job.next += 1;
                        stats.condition_skips += 1;
                        continue;
                    }
                    // Flush the composed line if this element starts a new one.
                    if job.current_write.as_ref().is_some_and(|(l, _)| *l != line) {
                        if self.outstanding.len() >= self.table_cap {
                            break;
                        }
                        let (l, elems) = job.current_write.take().unwrap();
                        let rid = ids.alloc(UnitTag::Stream);
                        self.outstanding.insert(
                            rid,
                            LineReq {
                                elems,
                                is_write: true,
                            },
                        );
                        ports.llc_request(rid, l, true, now);
                        stats.stream_line_requests += 1;
                    }
                    // The data value is committed to memory at issue time
                    // (DX100 is the only writer inside the ROI).
                    let v = dx100_common::value::truncate(dtype, spd.tile(ts).get(i));
                    mem.write(dtype, addr, v);
                    job.current_write
                        .get_or_insert_with(|| (line, Vec::new()))
                        .1
                        .push((i, addr));
                    job.next += 1;
                }
                _ => unreachable!(),
            }
        }
        // Flush the final composed write line once the loop is exhausted.
        if job.next >= count {
            if let Some((l, elems)) = job.current_write.take() {
                if self.outstanding.len() < self.table_cap {
                    let rid = ids.alloc(UnitTag::Stream);
                    self.outstanding.insert(
                        rid,
                        LineReq {
                            elems,
                            is_write: true,
                        },
                    );
                    ports.llc_request(rid, l, true, now);
                    stats.stream_line_requests += 1;
                } else {
                    job.current_write = Some((l, elems)); // retry next cycle
                }
            }
        }
        self.try_retire(spd)
    }

    /// Handles a completed line. Returns the handle of a job that finished.
    pub fn on_response(
        &mut self,
        id: ReqId,
        spd: &mut Scratchpad,
        mem: &MemoryImage,
    ) -> Option<u64> {
        let req = self
            .outstanding
            .remove(&id)
            .expect("unknown stream response");
        let job = self.queue.front_mut().expect("response without a job");
        let (dtype, _, td, _, _) = job.fields();
        if req.is_write {
            job.acked += req.elems.len();
        } else {
            let td = td.expect("read response on a store job");
            for (i, addr) in &req.elems {
                spd.produce(td, *i, mem.read(dtype, *addr));
            }
            job.produced += req.elems.len();
            if let Some((line, _)) = req
                .elems
                .first()
                .map(|(i, a)| (LineAddr::containing(*a), i))
            {
                self.inflight_lines.remove(&line);
            }
        }
        self.try_retire(spd)
    }

    fn try_retire(&mut self, _spd: &mut Scratchpad) -> Option<u64> {
        if self.queue.front().is_some_and(|j| j.done()) {
            let job = self.queue.pop_front().unwrap();
            Some(job.d.handle)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Dx100Config;
    use crate::isa::RegId;
    use crate::ports::TestPorts;

    const T0: TileId = TileId::new(0);
    const T1: TileId = TileId::new(1);

    fn sld_job(base: Addr, start: u64, stride: u64, count: u64) -> DispatchedInstr {
        DispatchedInstr {
            handle: 1,
            instr: Instruction::sld(
                DType::U32,
                base,
                T0,
                RegId::new(0),
                RegId::new(1),
                RegId::new(2),
            ),
            r1: start,
            r2: stride,
            r3: count,
            flag: None,
        }
    }

    fn drive(
        unit: &mut StreamUnit,
        spd: &mut Scratchpad,
        mem: &mut MemoryImage,
        ports: &mut TestPorts,
        ids: &mut IdAlloc,
        cycles: Cycle,
    ) -> Option<u64> {
        let mut stats = Dx100Stats::default();
        for now in 0..cycles {
            while let Some(id) = ports.pop_ready(now) {
                if let Some(h) = unit.on_response(id, spd, mem) {
                    return Some(h);
                }
            }
            if let Some(h) = unit.step(now, spd, mem, ports, ids, &mut stats) {
                return Some(h);
            }
        }
        None
    }

    #[test]
    fn streaming_load_coalesces_lines() {
        let mut mem = MemoryImage::new();
        let a = mem.alloc("a", DType::U32, 64);
        for i in 0..64 {
            mem.write_elem(a, i, i * 3);
        }
        let cfg = Dx100Config::paper();
        let mut spd = Scratchpad::new(2, 64);
        spd.begin_produce_unsized(T0);
        let mut unit = StreamUnit::new(cfg.stream_rate, cfg.request_table_entries);
        let mut ports = TestPorts::new(10);
        let mut ids = IdAlloc::default();
        unit.enqueue(sld_job(a.base(), 0, 1, 64));
        let h = drive(&mut unit, &mut spd, &mut mem, &mut ports, &mut ids, 500);
        assert_eq!(h, Some(1));
        // 64 u32 elements = 256 B = 4 cache lines.
        assert_eq!(ports.issued.len(), 4);
        assert_eq!(spd.tile(T0).get(10), 30);
        assert!(unit.is_idle());
    }

    #[test]
    fn streaming_store_writes_memory() {
        let mut mem = MemoryImage::new();
        let a = mem.alloc("a", DType::U32, 32);
        let mut spd = Scratchpad::new(2, 64);
        spd.write_tile(T1, &(0..32u64).map(|i| i + 500).collect::<Vec<_>>());
        let mut unit = StreamUnit::new(4, 128);
        let mut ports = TestPorts::new(5);
        let mut ids = IdAlloc::default();
        unit.enqueue(DispatchedInstr {
            handle: 2,
            instr: Instruction::Sst {
                dtype: DType::U32,
                base: a.base(),
                ts: T1,
                rs1: RegId::new(0),
                rs2: RegId::new(1),
                rs3: RegId::new(2),
                tc: None,
            },
            r1: 0,
            r2: 1,
            r3: 32,
            flag: None,
        });
        let h = drive(&mut unit, &mut spd, &mut mem, &mut ports, &mut ids, 500);
        assert_eq!(h, Some(2));
        assert_eq!(mem.read_elem(a, 31), 531);
        // 32 u32 = 128 B = 2 lines, all writes.
        assert_eq!(ports.issued.len(), 2);
        assert!(ports.issued.iter().all(|(_, _, w, _)| *w));
    }

    #[test]
    fn request_table_bounds_outstanding() {
        let mut mem = MemoryImage::new();
        let a = mem.alloc("a", DType::U32, 4096);
        let mut spd = Scratchpad::new(2, 4096);
        spd.begin_produce_unsized(T0);
        let mut unit = StreamUnit::new(16, 4); // tiny table
        let mut ports = TestPorts::new(100_000); // nothing ever returns
        let mut ids = IdAlloc::default();
        unit.enqueue(sld_job(a.base(), 0, 16, 256)); // stride 16 → one line each
        let mut stats = Dx100Stats::default();
        for now in 0..50 {
            unit.step(now, &mut spd, &mut mem, &mut ports, &mut ids, &mut stats);
        }
        assert_eq!(ports.issued.len(), 4, "request table must cap outstanding");
    }
}
