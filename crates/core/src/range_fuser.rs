//! The Range Fuser: merges many small range loops (`j = lo[k] .. hi[k]`)
//! into one long (k, j) sequence suitable for bulk indirect access
//! (paper Section 3.4 and Figure 5).

use std::collections::VecDeque;

use crate::controller::DispatchedInstr;
use crate::functional::ExecError;
use crate::isa::Instruction;
use crate::scratchpad::Scratchpad;

#[derive(Clone, Debug)]
struct RangeJob {
    d: DispatchedInstr,
    /// Current outer index.
    k: usize,
    /// Next inner value within the current range, once the range is loaded.
    j: Option<u64>,
    /// Elements emitted so far.
    out: usize,
    n: Option<usize>,
}

/// The timed Range Fuser unit.
#[derive(Clone, Debug)]
pub struct RangeFuser {
    queue: VecDeque<RangeJob>,
    rate: usize,
}

impl RangeFuser {
    /// Creates a fuser emitting up to `rate` output elements per cycle.
    pub fn new(rate: usize) -> Self {
        RangeFuser {
            queue: VecDeque::new(),
            rate,
        }
    }

    /// Accepts a dispatched RNG instruction.
    pub fn enqueue(&mut self, d: DispatchedInstr) {
        self.queue.push_back(RangeJob {
            d,
            k: 0,
            j: None,
            out: 0,
            n: None,
        });
    }

    /// Whether no job is queued or executing.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the next `step` would be a pure no-op given frozen scratchpad
    /// state (used by the engine's quiescence check).
    pub fn quiescent(&self, spd: &Scratchpad) -> bool {
        let Some(job) = self.queue.front() else {
            return true;
        };
        let Instruction::Rng { ts1, ts2, tc, .. } = job.d.instr else {
            return false;
        };
        match job.n {
            // Sizing waits only while a bound tile length is unknown.
            None => spd.tile(ts1).len().is_none() || spd.tile(ts2).len().is_none(),
            // Emission waits only on unfinished bound/condition elements.
            Some(n) => {
                job.k < n
                    && (!spd.tile(ts1).finished(job.k)
                        || !spd.tile(ts2).finished(job.k)
                        || tc.is_some_and(|c| !spd.tile(c).finished(job.k)))
            }
        }
    }

    /// Emits up to `rate` fused elements. Returns the handle of a job that
    /// finished this cycle.
    ///
    /// # Errors
    /// Returns [`ExecError::TileOverflow`] when the fused output exceeds the
    /// budget register or tile capacity, and
    /// [`ExecError::LengthMismatch`] for inconsistent bound tiles.
    pub fn step(&mut self, spd: &mut Scratchpad) -> Result<Option<u64>, ExecError> {
        let Some(job) = self.queue.front_mut() else {
            return Ok(None);
        };
        let Instruction::Rng {
            td1,
            td2,
            ts1,
            ts2,
            tc,
            ..
        } = job.d.instr
        else {
            unreachable!("non-RNG instruction routed to the range fuser");
        };
        if job.n.is_none() {
            let (Some(n1), Some(n2)) = (spd.tile(ts1).len(), spd.tile(ts2).len()) else {
                return Ok(None);
            };
            if n1 != n2 {
                return Err(ExecError::LengthMismatch(ts1, ts2));
            }
            job.n = Some(n1);
        }
        let n = job.n.unwrap();
        let budget = (job.d.r1 as usize).min(spd.capacity());
        for _ in 0..self.rate {
            if job.k >= n {
                break;
            }
            let k = job.k;
            // Gate on the bound tiles (and condition) being produced.
            if !spd.tile(ts1).finished(k)
                || !spd.tile(ts2).finished(k)
                || tc.is_some_and(|c| !spd.tile(c).finished(k))
            {
                break;
            }
            if tc.is_some_and(|c| spd.tile(c).get(k) == 0) {
                job.k += 1;
                job.j = None;
                continue;
            }
            let lo = spd.tile(ts1).get(k);
            let hi = spd.tile(ts2).get(k);
            let j = job.j.unwrap_or(lo);
            if j >= hi {
                job.k += 1;
                job.j = None;
                continue;
            }
            if job.out >= budget {
                return Err(ExecError::TileOverflow {
                    tile: td1,
                    needed: job.out + 1,
                    capacity: budget,
                });
            }
            spd.produce(td1, job.out, k as u64);
            spd.produce(td2, job.out, j);
            job.out += 1;
            job.j = Some(j + 1);
        }
        if job.k >= n {
            let handle = job.d.handle;
            spd.set_len(td1, job.out);
            spd.set_len(td2, job.out);
            self.queue.pop_front();
            return Ok(Some(handle));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{RegId, TileId};

    const T0: TileId = TileId::new(0);
    const T1: TileId = TileId::new(1);
    const T2: TileId = TileId::new(2);
    const T3: TileId = TileId::new(3);

    fn rng_instr(budget: u64) -> DispatchedInstr {
        DispatchedInstr {
            handle: 7,
            instr: Instruction::Rng {
                td1: T2,
                td2: T3,
                ts1: T0,
                ts2: T1,
                rs1: RegId::new(0),
                tc: None,
            },
            r1: budget,
            r2: 0,
            r3: 0,
            flag: None,
        }
    }

    #[test]
    fn fuses_ranges_in_order() {
        let mut spd = Scratchpad::new(4, 64);
        spd.write_tile(T0, &[2, 10, 20]);
        spd.write_tile(T1, &[4, 10, 23]);
        spd.begin_produce_unsized(T2);
        spd.begin_produce_unsized(T3);
        let mut rf = RangeFuser::new(4);
        rf.enqueue(rng_instr(64));
        let mut done = None;
        for _ in 0..10 {
            if let Some(h) = rf.step(&mut spd).unwrap() {
                done = Some(h);
                break;
            }
        }
        assert_eq!(done, Some(7));
        assert_eq!(spd.tile(T2).valid(), &[0, 0, 2, 2, 2]);
        assert_eq!(spd.tile(T3).valid(), &[2, 3, 20, 21, 22]);
    }

    #[test]
    fn overflow_is_an_error() {
        let mut spd = Scratchpad::new(4, 64);
        spd.write_tile(T0, &[0]);
        spd.write_tile(T1, &[10]);
        spd.begin_produce_unsized(T2);
        spd.begin_produce_unsized(T3);
        let mut rf = RangeFuser::new(8);
        rf.enqueue(rng_instr(4)); // budget of 4 < 10 outputs
        let mut saw_err = false;
        for _ in 0..10 {
            match rf.step(&mut spd) {
                Err(ExecError::TileOverflow { .. }) => {
                    saw_err = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
                Ok(_) => {}
            }
        }
        assert!(saw_err);
    }

    #[test]
    fn waits_for_unfinished_bounds() {
        let mut spd = Scratchpad::new(4, 64);
        spd.begin_produce(T0, 1);
        spd.begin_produce(T1, 1);
        spd.begin_produce_unsized(T2);
        spd.begin_produce_unsized(T3);
        let mut rf = RangeFuser::new(4);
        rf.enqueue(rng_instr(64));
        assert_eq!(rf.step(&mut spd).unwrap(), None, "bounds not produced yet");
        spd.produce(T0, 0, 5);
        spd.produce(T1, 0, 7);
        let done = rf.step(&mut spd).unwrap();
        assert_eq!(done, Some(7));
        assert_eq!(spd.tile(T3).valid(), &[5, 6]);
    }
}
