//! The simulated application address space: named arrays backed by real
//! bytes.
//!
//! Both execution models operate on a `MemoryImage`: the functional model
//! reads/writes it immediately, the timed engine reads/writes it when the
//! corresponding DRAM/LLC transactions complete. Because DX100 holds
//! exclusive write access to its indirect regions inside a region of
//! interest (paper Section 4.2 — Legality), the two orders are equivalent
//! and the models produce bit-identical results.

use dx100_common::{value, Addr, DType};

/// Handle to an allocated array: base address, element type, and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayHandle {
    base: Addr,
    dtype: DType,
    len: u64,
}

impl ArrayHandle {
    /// Base byte address of the array.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `idx`.
    ///
    /// # Panics
    /// Debug-panics if `idx` is out of bounds.
    #[inline]
    pub fn addr_of(&self, idx: u64) -> Addr {
        debug_assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        self.base + idx * self.dtype.size_bytes()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len * self.dtype.size_bytes()
    }
}

/// A flat little-endian address space with an array allocator.
///
/// Addresses start above zero and arrays are page-aligned, mimicking the
/// paper's huge-page-backed data regions.
#[derive(Clone, Debug, Default)]
pub struct MemoryImage {
    data: Vec<u8>,
    next_base: Addr,
}

/// Alignment of allocated arrays (a 4 KB page).
const ARRAY_ALIGN: u64 = 4096;
/// First allocatable address (keep 0 invalid).
const FIRST_BASE: u64 = 4096;

impl MemoryImage {
    /// Creates an empty address space.
    pub fn new() -> Self {
        MemoryImage {
            data: Vec::new(),
            next_base: FIRST_BASE,
        }
    }

    /// Allocates a zero-initialized array of `len` elements of `dtype`.
    /// `_name` is a diagnostic label.
    pub fn alloc(&mut self, _name: &str, dtype: DType, len: u64) -> ArrayHandle {
        let base = self.next_base;
        let size = len * dtype.size_bytes();
        self.next_base = (base + size).div_ceil(ARRAY_ALIGN) * ARRAY_ALIGN;
        let need = self.next_base as usize;
        if self.data.len() < need {
            self.data.resize(need, 0);
        }
        ArrayHandle { base, dtype, len }
    }

    /// Highest allocated address (exclusive).
    pub fn high_water(&self) -> Addr {
        self.next_base
    }

    /// Reads the element at `idx` of `array` as a raw value lane.
    #[inline]
    pub fn read_elem(&self, array: ArrayHandle, idx: u64) -> u64 {
        self.read(array.dtype(), array.addr_of(idx))
    }

    /// Writes a raw value lane to element `idx` of `array`.
    #[inline]
    pub fn write_elem(&mut self, array: ArrayHandle, idx: u64, v: u64) {
        self.write(array.dtype(), array.addr_of(idx), v);
    }

    /// Reads a value of `dtype` at byte address `addr`.
    ///
    /// # Panics
    /// Panics if the address range is unallocated.
    #[inline]
    pub fn read(&self, dtype: DType, addr: Addr) -> u64 {
        value::read_le(dtype, &self.data, addr as usize)
    }

    /// Writes a value of `dtype` at byte address `addr`.
    ///
    /// # Panics
    /// Panics if the address range is unallocated.
    #[inline]
    pub fn write(&mut self, dtype: DType, addr: Addr, v: u64) {
        value::write_le(dtype, &mut self.data, addr as usize, v);
    }

    /// Copies an `f64` slice into `array` (convenience for dataset setup).
    ///
    /// # Panics
    /// Panics on length mismatch or non-f64 arrays.
    pub fn fill_f64(&mut self, array: ArrayHandle, values: &[f64]) {
        assert_eq!(array.dtype(), DType::F64);
        assert_eq!(values.len() as u64, array.len());
        for (i, v) in values.iter().enumerate() {
            self.write_elem(array, i as u64, value::from_f64(*v));
        }
    }

    /// Copies a `u32` slice into `array`.
    ///
    /// # Panics
    /// Panics on length mismatch or non-u32 arrays.
    pub fn fill_u32(&mut self, array: ArrayHandle, values: &[u32]) {
        assert_eq!(array.dtype(), DType::U32);
        assert_eq!(values.len() as u64, array.len());
        for (i, v) in values.iter().enumerate() {
            self.write_elem(array, i as u64, *v as u64);
        }
    }

    /// Reads the whole array back as raw lanes (test/diagnostic helper).
    pub fn to_vec(&self, array: ArrayHandle) -> Vec<u64> {
        (0..array.len()).map(|i| self.read_elem(array, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_page_aligned_and_disjoint() {
        let mut m = MemoryImage::new();
        let a = m.alloc("a", DType::U32, 100);
        let b = m.alloc("b", DType::F64, 3);
        assert_eq!(a.base() % ARRAY_ALIGN, 0);
        assert_eq!(b.base() % ARRAY_ALIGN, 0);
        assert!(a.base() + a.size_bytes() <= b.base());
        assert!(a.base() >= FIRST_BASE);
    }

    #[test]
    fn element_round_trip() {
        let mut m = MemoryImage::new();
        let a = m.alloc("a", DType::U32, 8);
        m.write_elem(a, 3, 0xdead_beef);
        assert_eq!(m.read_elem(a, 3), 0xdead_beef);
        assert_eq!(m.read_elem(a, 2), 0);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = MemoryImage::new();
        let a = m.alloc("a", DType::F64, 4);
        m.fill_f64(a, &[1.0, -2.5, 3.25, 0.0]);
        assert_eq!(value::to_f64(m.read_elem(a, 1)), -2.5);
        assert_eq!(m.to_vec(a).len(), 4);
    }

    #[test]
    fn addresses_match_layout() {
        let mut m = MemoryImage::new();
        let a = m.alloc("a", DType::U64, 10);
        assert_eq!(a.addr_of(0), a.base());
        assert_eq!(a.addr_of(5), a.base() + 40);
    }

    #[test]
    fn byte_addressed_access_sees_elements() {
        let mut m = MemoryImage::new();
        let a = m.alloc("a", DType::U32, 4);
        m.write_elem(a, 2, 77);
        assert_eq!(m.read(DType::U32, a.base() + 8), 77);
    }
}
