//! Analytical area/power model reproducing the paper's Table 4.
//!
//! The paper synthesized DX100's RTL in 28 nm TSMC (BCAM in 28 nm FDSOI) and
//! scaled to 14 nm with the Stillmaker & Baas equations to compare against a
//! Skylake core measured from die shots. Re-synthesis is out of scope for a
//! software reproduction, so this module encodes the published per-component
//! numbers and performs the same arithmetic: component sums, technology
//! scaling, and the processor-overhead percentage.

/// Area and power of one DX100 component at 28 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentCost {
    /// Component name as it appears in Table 4.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// Table 4's component breakdown at 28 nm.
pub const COMPONENTS: [ComponentCost; 9] = [
    ComponentCost {
        name: "Range Fuser",
        area_mm2: 0.001,
        power_mw: 0.26,
    },
    ComponentCost {
        name: "ALU",
        area_mm2: 0.095,
        power_mw: 74.83,
    },
    ComponentCost {
        name: "Stream Access",
        area_mm2: 0.012,
        power_mw: 6.03,
    },
    ComponentCost {
        name: "Indirect Access",
        area_mm2: 0.323,
        power_mw: 83.70,
    },
    ComponentCost {
        name: "Controller",
        area_mm2: 0.002,
        power_mw: 0.43,
    },
    ComponentCost {
        name: "Interface",
        area_mm2: 0.045,
        power_mw: 30.0,
    },
    ComponentCost {
        name: "Coherency Agent",
        area_mm2: 0.010,
        power_mw: 3.12,
    },
    ComponentCost {
        name: "Register File",
        area_mm2: 0.005,
        power_mw: 1.56,
    },
    ComponentCost {
        name: "Scratchpad",
        area_mm2: 3.566,
        power_mw: 577.03,
    },
];

/// Area scaling factor 28 nm → 14 nm derived from the Stillmaker & Baas
/// equations for SRAM-dominated designs (the paper's 4.061 mm² → ~1.5 mm²).
pub const AREA_SCALE_28_TO_14: f64 = 1.5 / 4.061;

/// Skylake core area at 14 nm from die shots (paper Section 6.5), mm².
pub const SKYLAKE_CORE_AREA_14NM_MM2: f64 = 10.1;

/// Area of a 2 MB LLC slice (data + tags + directory) at 14 nm, mm².
pub const LLC_SLICE_2MB_AREA_14NM_MM2: f64 = 2.3;

/// The full area/power model.
#[derive(Debug, Clone, Copy)]
pub struct AreaModel {
    /// Number of cores sharing one DX100 instance.
    pub cores_sharing: usize,
}

impl AreaModel {
    /// The paper's sharing configuration (4 cores per instance).
    pub fn paper() -> Self {
        AreaModel { cores_sharing: 4 }
    }

    /// Total DX100 area at 28 nm in mm² (Table 4: 4.061).
    pub fn total_area_28nm_mm2(&self) -> f64 {
        COMPONENTS.iter().map(|c| c.area_mm2).sum()
    }

    /// Total DX100 power at 28 nm in mW (Table 4: 777.17).
    pub fn total_power_28nm_mw(&self) -> f64 {
        COMPONENTS.iter().map(|c| c.power_mw).sum()
    }

    /// DX100 area scaled to 14 nm in mm² (paper: ≈ 1.5).
    pub fn total_area_14nm_mm2(&self) -> f64 {
        self.total_area_28nm_mm2() * AREA_SCALE_28_TO_14
    }

    /// Area overhead relative to the multicore processor
    /// (paper: 1.5 / (4 × 10.1) ≈ 3.7%).
    pub fn processor_overhead_fraction(&self) -> f64 {
        self.total_area_14nm_mm2() / (self.cores_sharing as f64 * SKYLAKE_CORE_AREA_14NM_MM2)
    }

    /// The largest single component (the scratchpad, in the paper).
    pub fn dominant_component(&self) -> ComponentCost {
        *COMPONENTS
            .iter()
            .max_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2))
            .expect("component table is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table4() {
        let m = AreaModel::paper();
        // Table 4 prints 4.061; the component column sums to 4.059 (rounding).
        assert!((m.total_area_28nm_mm2() - 4.061).abs() < 0.005);
        assert!((m.total_power_28nm_mw() - 777.17).abs() < 0.5);
    }

    #[test]
    fn scaled_area_and_overhead_match_paper() {
        let m = AreaModel::paper();
        assert!((m.total_area_14nm_mm2() - 1.5).abs() < 0.01);
        let ovh = m.processor_overhead_fraction();
        assert!((ovh - 0.037).abs() < 0.001, "overhead {ovh}");
    }

    #[test]
    fn scratchpad_dominates() {
        assert_eq!(AreaModel::paper().dominant_component().name, "Scratchpad");
        // The scratchpad is comparable to a 2 MB LLC slice at 14 nm, which is
        // why the baseline gets 2 MB of extra LLC.
        let spd_14 = 3.566 * AREA_SCALE_28_TO_14;
        assert!((spd_14 - LLC_SLICE_2MB_AREA_14NM_MM2).abs() < 1.0);
    }
}
