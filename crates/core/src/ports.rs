//! The Interface's view of the outside system (paper Section 3.6).
//!
//! DX100 talks to three things: the coherence directory (snoops during the
//! fill stage), the LLC (Cache Interface — streaming accesses and indirect
//! accesses whose line is cached), and the DRAM controllers (DRAM Interface
//! — indirect accesses that miss everywhere, injected directly to preserve
//! the Row Table's carefully constructed order). The system glue implements
//! this trait over the cache hierarchy and DRAM simulator.

use dx100_common::{Cycle, LineAddr, ReqId};

/// Memory-side ports of one DX100 instance.
pub trait MemPorts {
    /// Coherence-directory snoop: is `line` currently valid in any cache?
    /// Sets the Row Table's H bit.
    fn snoop(&self, line: LineAddr) -> bool;

    /// Invalidate `line` in all caches (coherency agent, on dispatch of an
    /// instruction whose tiles the cores may have cached). Returns whether
    /// any copy was dirty.
    fn invalidate(&mut self, line: LineAddr) -> bool;

    /// Issue a request through the Cache Interface into the LLC. Responses
    /// arrive via `Dx100Engine::mem_response` with the same `id`.
    fn llc_request(&mut self, id: ReqId, line: LineAddr, is_write: bool, now: Cycle);

    /// Try to inject a request directly into the DRAM controller's request
    /// buffer. Returns `false` if the target channel's buffer is full (the
    /// request generator retries next cycle). Reads respond via
    /// `Dx100Engine::mem_response`; writes are fire-and-forget at this level
    /// but still acknowledged with a response.
    fn dram_try_request(&mut self, id: ReqId, line: LineAddr, is_write: bool, now: Cycle) -> bool;
}

/// A trivially permissive port set for unit tests: every request completes
/// after a fixed latency, nothing is ever cached.
#[derive(Debug, Default)]
pub struct TestPorts {
    /// Latency applied to every request.
    pub latency: Cycle,
    /// Completions to feed back: `(ready_at, id)`.
    pub completions: std::collections::VecDeque<(Cycle, ReqId)>,
    /// Log of `(id, line, is_write, via_dram)` issues.
    pub issued: Vec<(ReqId, LineAddr, bool, bool)>,
    /// Lines reported as cached by `snoop`.
    pub cached: std::collections::HashSet<LineAddr>,
    /// When set, `dram_try_request` refuses this many times before
    /// accepting (back-pressure testing).
    pub dram_refusals: u32,
}

impl TestPorts {
    /// Ports with a fixed completion latency.
    pub fn new(latency: Cycle) -> Self {
        TestPorts {
            latency,
            ..Default::default()
        }
    }

    /// Pops completions that are ready at `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<ReqId> {
        if self.completions.front().is_some_and(|(t, _)| *t <= now) {
            Some(self.completions.pop_front().unwrap().1)
        } else {
            None
        }
    }
}

impl MemPorts for TestPorts {
    fn snoop(&self, line: LineAddr) -> bool {
        self.cached.contains(&line)
    }

    fn invalidate(&mut self, line: LineAddr) -> bool {
        self.cached.remove(&line)
    }

    fn llc_request(&mut self, id: ReqId, line: LineAddr, is_write: bool, now: Cycle) {
        self.issued.push((id, line, is_write, false));
        self.completions.push_back((now + self.latency, id));
    }

    fn dram_try_request(&mut self, id: ReqId, line: LineAddr, is_write: bool, now: Cycle) -> bool {
        if self.dram_refusals > 0 {
            self.dram_refusals -= 1;
            return false;
        }
        self.issued.push((id, line, is_write, true));
        self.completions.push_back((now + self.latency, id));
        true
    }
}
