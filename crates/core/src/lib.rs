//! # DX100 — the programmable data access accelerator
//!
//! This crate is the paper's primary contribution rendered in Rust: a shared,
//! memory-mapped accelerator that offloads *bulk* indirect loads, stores, and
//! read-modify-writes, and makes them fast by giving the DRAM command stream
//! visibility over an entire 16K-element tile:
//!
//! * **Reordering** — the [`indirect`] unit's Row Table groups accesses by
//!   DRAM row and issues each row's columns back-to-back, turning row misses
//!   into hits.
//! * **Coalescing** — the Word Table links all words that share a cache-line
//!   column, so each unique line is fetched exactly once per tile.
//! * **Interleaving** — the request generator walks Row Table slices in
//!   channel/bank-group-interleaved order, keeping every channel busy and
//!   dodging the `tCCD_L` same-bank-group penalty.
//!
//! The crate provides two execution models sharing one ISA ([`isa`]):
//!
//! * [`functional::FunctionalDx100`] executes instructions immediately on a
//!   [`MemoryImage`] — the paper's "functional simulator ... to ensure the
//!   correctness of the implementations before simulation".
//! * [`engine::Dx100Engine`] is the timed microarchitectural model — the
//!   scratchpad, controller/scoreboard, stream unit, indirect unit
//!   (Row/Word tables), range fuser, ALU, TLB, and coherency agent of
//!   Figure 2(b) — driven cycle by cycle against the DRAM and cache
//!   substrates.
//!
//! Both produce bit-identical results; the property tests in
//! `tests/` lean on that equivalence.
//!
//! # Quickstart
//!
//! ```
//! use dx100_common::DType;
//! use dx100_core::functional::FunctionalDx100;
//! use dx100_core::isa::{Instruction, RegId, TileId};
//! use dx100_core::{Dx100Config, MemoryImage};
//!
//! // A[B[i]] gather over 8 elements, fully offloaded.
//! let mut mem = MemoryImage::new();
//! let a = mem.alloc("A", DType::U32, 16);
//! let b = mem.alloc("B", DType::U32, 8);
//! for i in 0..16 {
//!     mem.write_elem(a, i, (100 + i) as u64);
//! }
//! for (i, idx) in [7u64, 3, 7, 0, 15, 9, 1, 2].into_iter().enumerate() {
//!     mem.write_elem(b, i as u64, idx);
//! }
//!
//! let mut dx = FunctionalDx100::new(Dx100Config::paper());
//! let (t_idx, t_val) = (TileId::new(0), TileId::new(1));
//! dx.write_reg(RegId::new(0), 0); // start
//! dx.write_reg(RegId::new(1), 1); // stride
//! dx.write_reg(RegId::new(2), 8); // count
//! dx.execute(
//!     &Instruction::sld(DType::U32, b.base(), t_idx, RegId::new(0), RegId::new(1), RegId::new(2)),
//!     &mut mem,
//! ).unwrap();
//! dx.execute(&Instruction::ild(DType::U32, a.base(), t_val, t_idx), &mut mem).unwrap();
//! assert_eq!(dx.tile(t_val).data()[0], 107); // A[B[0]] = A[7]
//! ```

pub mod alu_unit;
pub mod area;
pub mod config;
pub mod controller;
pub mod engine;
pub mod functional;
pub mod indirect;
pub mod isa;
pub mod memimg;
pub mod ports;
pub mod profile;
pub mod range_fuser;
pub mod regfile;
pub mod scratchpad;
pub mod stats;
pub mod stream_unit;
pub mod tlb;

pub use config::Dx100Config;
pub use engine::Dx100Engine;
pub use memimg::{ArrayHandle, MemoryImage};
pub use ports::MemPorts;
pub use profile::EngineProfile;
pub use stats::Dx100Stats;
