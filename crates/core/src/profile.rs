//! Per-engine DX100 cycle attribution: a MECE tick breakdown plus
//! per-unit utilization and tile-phase residency counters.
//!
//! The top-level split (`active` / `wait_mem` / `idle` / `halted`) is
//! derived from the same quiescence predicates the cycle-skip layer uses
//! ([`crate::Dx100Engine::next_event`]), so it is bit-identical with
//! skipping on or off: a certified span is quiescent by construction, its
//! outstanding-request count is frozen, and
//! [`crate::Dx100Engine::credit_idle_span`] credits the whole span in one
//! step with the same classification a per-cycle tick would compute.

use dx100_common::Pow2Histogram;

/// Cycle attribution for one DX100 engine instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Ticks where some unit, the controller, or the response inbox had
    /// work (the engine was not quiescent).
    pub active: u64,
    /// Quiescent ticks with memory requests outstanding: the engine is
    /// stalled on DRAM/LLC, not out of work.
    pub wait_mem: u64,
    /// Quiescent ticks with nothing outstanding: no instructions queued.
    pub idle: u64,
    /// Ticks after a runtime error halted the engine.
    pub halted: u64,
    /// Ticks the stream unit had work (non-quiescent). Utilization
    /// counters overlap; they are not part of the MECE split.
    pub stream_busy: u64,
    /// Ticks the indirect unit had work.
    pub indirect_busy: u64,
    /// Ticks the ALU had work.
    pub alu_busy: u64,
    /// Ticks the range fuser had work.
    pub range_busy: u64,
    /// Ticks the fill phase progressed (index fetch + snoop activity).
    pub fill_ticks: u64,
    /// Ticks the issue phase progressed (coalesced line reads/writes).
    pub issue_ticks: u64,
    /// Ticks the drain phase was live (indirect responses outstanding).
    pub drain_ticks: u64,
    /// Row Table occupancy (buffered column entries), sampled every tick.
    pub row_table_depth: Pow2Histogram,
}

impl EngineProfile {
    /// Total ticks attributed by the MECE split (must equal the ticks the
    /// engine was driven, real plus credited).
    pub fn attributed(&self) -> u64 {
        self.active + self.wait_mem + self.idle + self.halted
    }

    /// The MECE buckets as `(name, ticks)` pairs, in report order.
    pub fn buckets(&self) -> [(&'static str, u64); 4] {
        [
            ("active", self.active),
            ("wait_mem", self.wait_mem),
            ("idle", self.idle),
            ("halted", self.halted),
        ]
    }

    /// Per-unit busy counters as `(name, ticks)` pairs, in report order.
    pub fn unit_busy(&self) -> [(&'static str, u64); 4] {
        [
            ("stream", self.stream_busy),
            ("indirect", self.indirect_busy),
            ("alu", self.alu_busy),
            ("range", self.range_busy),
        ]
    }

    /// Tile-phase residency as `(name, ticks)` pairs, in report order.
    pub fn phases(&self) -> [(&'static str, u64); 3] {
        [
            ("fill", self.fill_ticks),
            ("issue", self.issue_ticks),
            ("drain", self.drain_ticks),
        ]
    }

    /// Folds another engine's breakdown in (field-wise sum).
    pub fn merge(&mut self, other: &EngineProfile) {
        self.active += other.active;
        self.wait_mem += other.wait_mem;
        self.idle += other.idle;
        self.halted += other.halted;
        self.stream_busy += other.stream_busy;
        self.indirect_busy += other.indirect_busy;
        self.alu_busy += other.alu_busy;
        self.range_busy += other.range_busy;
        self.fill_ticks += other.fill_ticks;
        self.issue_ticks += other.issue_ticks;
        self.drain_ticks += other.drain_ticks;
        self.row_table_depth.merge(&other.row_table_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributed_is_the_mece_split_only() {
        let p = EngineProfile {
            active: 10,
            wait_mem: 20,
            idle: 30,
            halted: 1,
            stream_busy: 999, // utilization counters must not count
            ..EngineProfile::default()
        };
        assert_eq!(p.attributed(), 61);
        assert_eq!(p.buckets().iter().map(|(_, v)| v).sum::<u64>(), 61);
    }

    #[test]
    fn merge_sums_fieldwise() {
        let mut a = EngineProfile {
            active: 1,
            drain_ticks: 2,
            ..EngineProfile::default()
        };
        a.row_table_depth.record(5);
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.active, 2);
        assert_eq!(b.drain_ticks, 4);
        assert_eq!(b.row_table_depth.total(), 2);
    }
}
