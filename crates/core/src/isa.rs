//! The DX100 instruction set (paper Table 2): eight instructions covering
//! indirect accesses, streaming accesses, ALU operations, and range-loop
//! fusion, with a 192-bit encoding transmitted as three 64-bit MMIO stores.

use std::fmt;

use dx100_common::{Addr, AluOp, DType};

/// Identifier of a scratchpad tile (0..32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileId(u8);

impl TileId {
    /// Maximum number of tiles addressable by the ISA.
    pub const MAX: u8 = 32;

    /// Creates a tile id.
    ///
    /// # Panics
    /// Panics if `id >= TileId::MAX`.
    pub const fn new(id: u8) -> Self {
        assert!(id < Self::MAX, "tile id out of range");
        TileId(id)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a scalar register (0..64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(u8);

impl RegId {
    /// Number of physical scalar registers.
    ///
    /// Table 3 specifies 32 architectural registers for the default
    /// four-core group; the engine provisions 64 physical entries so that
    /// up to eight client cores (the Figure 14 scaling study) each get a
    /// private eight-register bank — register writes arrive over MMIO
    /// asynchronously to other cores' instruction pushes, so banks shared
    /// across cores would race. The wire format's 6-bit register fields
    /// cover all 64.
    pub const MAX: u8 = 64;

    /// Creates a register id.
    ///
    /// # Panics
    /// Panics if `id >= RegId::MAX`.
    pub const fn new(id: u8) -> Self {
        assert!(id < Self::MAX, "register id out of range");
        RegId(id)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A DX100 instruction (Table 2).
///
/// `base` operands are virtual byte addresses of array starts; index tiles
/// hold *element* indices scaled by the instruction's [`DType`] width.
/// The optional `tc` operand names a condition tile whose per-element 0/1
/// values gate execution of the corresponding lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Indirect load: `TD[i] = BASE[TS1[i]]` for each `i` with `TC[i] != 0`.
    Ild {
        /// Element type of the indirect array.
        dtype: DType,
        /// Base address of the indirect array.
        base: Addr,
        /// Destination tile for gathered values.
        td: TileId,
        /// Source tile of element indices.
        ts1: TileId,
        /// Optional condition tile.
        tc: Option<TileId>,
    },
    /// Indirect store: `BASE[TS1[i]] = TS2[i]` for gated lanes.
    Ist {
        /// Element type of the indirect array.
        dtype: DType,
        /// Base address of the indirect array.
        base: Addr,
        /// Source tile of element indices.
        ts1: TileId,
        /// Source tile of values to scatter.
        ts2: TileId,
        /// Optional condition tile.
        tc: Option<TileId>,
    },
    /// Indirect read-modify-write: `BASE[TS1[i]] = op(BASE[TS1[i]], TS2[i])`.
    ///
    /// Only associative/commutative `op`s are legal
    /// ([`AluOp::is_rmw_legal`]); DX100 reorders the updates.
    Irmw {
        /// Element type of the indirect array.
        dtype: DType,
        /// Update operation (must be associative and commutative).
        op: AluOp,
        /// Base address of the indirect array.
        base: Addr,
        /// Source tile of element indices.
        ts1: TileId,
        /// Source tile of update values.
        ts2: TileId,
        /// Optional condition tile.
        tc: Option<TileId>,
    },
    /// Streaming load: `TD[i] = BASE[R[rs1] + i * R[rs2]]` for `i` in
    /// `0..R[rs3]`.
    Sld {
        /// Element type of the streamed array.
        dtype: DType,
        /// Base address of the streamed array.
        base: Addr,
        /// Destination tile.
        td: TileId,
        /// Register holding the starting element offset.
        rs1: RegId,
        /// Register holding the element stride.
        rs2: RegId,
        /// Register holding the element count.
        rs3: RegId,
        /// Optional condition tile.
        tc: Option<TileId>,
    },
    /// Streaming store: `BASE[R[rs1] + i * R[rs2]] = TS[i]`.
    Sst {
        /// Element type of the streamed array.
        dtype: DType,
        /// Base address of the streamed array.
        base: Addr,
        /// Source tile of values.
        ts: TileId,
        /// Register holding the starting element offset.
        rs1: RegId,
        /// Register holding the element stride.
        rs2: RegId,
        /// Register holding the element count.
        rs3: RegId,
        /// Optional condition tile.
        tc: Option<TileId>,
    },
    /// Vector ALU: `TD[i] = op(TS1[i], TS2[i])`.
    Aluv {
        /// Lane data type.
        dtype: DType,
        /// Operation.
        op: AluOp,
        /// Destination tile.
        td: TileId,
        /// First source tile.
        ts1: TileId,
        /// Second source tile.
        ts2: TileId,
        /// Optional condition tile.
        tc: Option<TileId>,
    },
    /// Scalar ALU: `TD[i] = op(TS[i], R[rs])`.
    Alus {
        /// Lane data type.
        dtype: DType,
        /// Operation.
        op: AluOp,
        /// Destination tile.
        td: TileId,
        /// Source tile.
        ts: TileId,
        /// Scalar register operand.
        rs: RegId,
        /// Optional condition tile.
        tc: Option<TileId>,
    },
    /// Range fusion: given per-range bounds `TS1[k]..TS2[k]`, emit the
    /// flattened outer indices into `TD1` and inner induction values into
    /// `TD2`. `R[rs1]` bounds the total output length (tile capacity).
    Rng {
        /// Destination tile of outer-loop indices `k`.
        td1: TileId,
        /// Destination tile of inner induction values `j`.
        td2: TileId,
        /// Source tile of range lower bounds.
        ts1: TileId,
        /// Source tile of range upper bounds.
        ts2: TileId,
        /// Register bounding total fused output length.
        rs1: RegId,
        /// Optional condition tile gating whole ranges.
        tc: Option<TileId>,
    },
}

impl Instruction {
    /// Convenience constructor for an unconditional [`Instruction::Sld`].
    pub fn sld(dtype: DType, base: Addr, td: TileId, rs1: RegId, rs2: RegId, rs3: RegId) -> Self {
        Instruction::Sld {
            dtype,
            base,
            td,
            rs1,
            rs2,
            rs3,
            tc: None,
        }
    }

    /// Convenience constructor for an unconditional [`Instruction::Ild`].
    pub fn ild(dtype: DType, base: Addr, td: TileId, ts1: TileId) -> Self {
        Instruction::Ild {
            dtype,
            base,
            td,
            ts1,
            tc: None,
        }
    }

    /// Convenience constructor for an unconditional [`Instruction::Ist`].
    pub fn ist(dtype: DType, base: Addr, ts1: TileId, ts2: TileId) -> Self {
        Instruction::Ist {
            dtype,
            base,
            ts1,
            ts2,
            tc: None,
        }
    }

    /// Convenience constructor for an unconditional [`Instruction::Irmw`].
    pub fn irmw(dtype: DType, op: AluOp, base: Addr, ts1: TileId, ts2: TileId) -> Self {
        Instruction::Irmw {
            dtype,
            op,
            base,
            ts1,
            ts2,
            tc: None,
        }
    }

    /// Returns this instruction with its condition tile set.
    ///
    /// # Panics
    /// Panics on [`Instruction::Rng`]-unsupported combinations? No — all
    /// eight instructions accept a condition tile.
    pub fn with_condition(mut self, cond: TileId) -> Self {
        match &mut self {
            Instruction::Ild { tc, .. }
            | Instruction::Ist { tc, .. }
            | Instruction::Irmw { tc, .. }
            | Instruction::Sld { tc, .. }
            | Instruction::Sst { tc, .. }
            | Instruction::Aluv { tc, .. }
            | Instruction::Alus { tc, .. }
            | Instruction::Rng { tc, .. } => *tc = Some(cond),
        }
        self
    }

    /// Destination tiles written by this instruction.
    pub fn dest_tiles(&self) -> Vec<TileId> {
        match *self {
            Instruction::Ild { td, .. }
            | Instruction::Sld { td, .. }
            | Instruction::Aluv { td, .. }
            | Instruction::Alus { td, .. } => vec![td],
            Instruction::Rng { td1, td2, .. } => vec![td1, td2],
            Instruction::Ist { .. } | Instruction::Irmw { .. } | Instruction::Sst { .. } => vec![],
        }
    }

    /// Source tiles read by this instruction (including the condition tile).
    pub fn source_tiles(&self) -> Vec<TileId> {
        let (mut v, tc) = match *self {
            Instruction::Ild { ts1, tc, .. } => (vec![ts1], tc),
            Instruction::Ist { ts1, ts2, tc, .. } | Instruction::Irmw { ts1, ts2, tc, .. } => {
                (vec![ts1, ts2], tc)
            }
            Instruction::Sld { tc, .. } => (vec![], tc),
            Instruction::Sst { ts, tc, .. } => (vec![ts], tc),
            Instruction::Aluv { ts1, ts2, tc, .. } => (vec![ts1, ts2], tc),
            Instruction::Alus { ts, tc, .. } => (vec![ts], tc),
            Instruction::Rng { ts1, ts2, tc, .. } => (vec![ts1, ts2], tc),
        };
        if let Some(c) = tc {
            v.push(c);
        }
        v
    }

    /// Validates ISA-level legality rules.
    ///
    /// # Errors
    /// Returns a description of the violation: non-associative/commutative
    /// RMW operations, integer-only ALU ops on float types, or a destination
    /// tile that is also a source.
    pub fn validate(&self) -> Result<(), IllegalInstruction> {
        if let Instruction::Irmw { op, .. } = self {
            if !op.is_rmw_legal() {
                return Err(IllegalInstruction::NonAssociativeRmw(*op));
            }
        }
        match self {
            Instruction::Irmw { op, dtype, .. }
            | Instruction::Aluv { op, dtype, .. }
            | Instruction::Alus { op, dtype, .. }
                if op.is_integer_only() && dtype.is_float() =>
            {
                return Err(IllegalInstruction::IntegerOpOnFloat(*op, *dtype));
            }
            _ => {}
        }
        for d in self.dest_tiles() {
            if self.source_tiles().contains(&d) {
                return Err(IllegalInstruction::DestIsSource(d));
            }
        }
        Ok(())
    }

    /// Encodes into the 192-bit wire format: three 64-bit words, transmitted
    /// as three memory-mapped stores (Section 3.5).
    pub fn encode(&self) -> [u64; 3] {
        let mut w0: u64 = 0;
        let mut base: Addr = 0;
        let put = |val: u64, lo: u32, bits: u32, word: &mut u64| {
            debug_assert!(val < (1 << bits));
            *word |= val << lo;
        };
        let enc_tc = |tc: Option<TileId>| -> u64 {
            match tc {
                Some(t) => 0b100_0000 | t.index() as u64,
                None => 0,
            }
        };
        match *self {
            Instruction::Ild {
                dtype,
                base: b,
                td,
                ts1,
                tc,
            } => {
                put(1, 0, 4, &mut w0);
                put(dtype.encode() as u64, 4, 3, &mut w0);
                put(td.index() as u64, 12, 6, &mut w0);
                put(ts1.index() as u64, 18, 6, &mut w0);
                put(enc_tc(tc), 30, 7, &mut w0);
                base = b;
            }
            Instruction::Ist {
                dtype,
                base: b,
                ts1,
                ts2,
                tc,
            } => {
                put(2, 0, 4, &mut w0);
                put(dtype.encode() as u64, 4, 3, &mut w0);
                put(ts1.index() as u64, 18, 6, &mut w0);
                put(ts2.index() as u64, 24, 6, &mut w0);
                put(enc_tc(tc), 30, 7, &mut w0);
                base = b;
            }
            Instruction::Irmw {
                dtype,
                op,
                base: b,
                ts1,
                ts2,
                tc,
            } => {
                put(3, 0, 4, &mut w0);
                put(dtype.encode() as u64, 4, 3, &mut w0);
                put(op.encode() as u64, 8, 4, &mut w0);
                put(ts1.index() as u64, 18, 6, &mut w0);
                put(ts2.index() as u64, 24, 6, &mut w0);
                put(enc_tc(tc), 30, 7, &mut w0);
                base = b;
            }
            Instruction::Sld {
                dtype,
                base: b,
                td,
                rs1,
                rs2,
                rs3,
                tc,
            } => {
                put(4, 0, 4, &mut w0);
                put(dtype.encode() as u64, 4, 3, &mut w0);
                put(td.index() as u64, 12, 6, &mut w0);
                put(enc_tc(tc), 30, 7, &mut w0);
                put(rs1.index() as u64, 37, 6, &mut w0);
                put(rs2.index() as u64, 43, 6, &mut w0);
                put(rs3.index() as u64, 49, 6, &mut w0);
                base = b;
            }
            Instruction::Sst {
                dtype,
                base: b,
                ts,
                rs1,
                rs2,
                rs3,
                tc,
            } => {
                put(5, 0, 4, &mut w0);
                put(dtype.encode() as u64, 4, 3, &mut w0);
                put(ts.index() as u64, 18, 6, &mut w0);
                put(enc_tc(tc), 30, 7, &mut w0);
                put(rs1.index() as u64, 37, 6, &mut w0);
                put(rs2.index() as u64, 43, 6, &mut w0);
                put(rs3.index() as u64, 49, 6, &mut w0);
                base = b;
            }
            Instruction::Aluv {
                dtype,
                op,
                td,
                ts1,
                ts2,
                tc,
            } => {
                put(6, 0, 4, &mut w0);
                put(dtype.encode() as u64, 4, 3, &mut w0);
                put(op.encode() as u64, 8, 4, &mut w0);
                put(td.index() as u64, 12, 6, &mut w0);
                put(ts1.index() as u64, 18, 6, &mut w0);
                put(ts2.index() as u64, 24, 6, &mut w0);
                put(enc_tc(tc), 30, 7, &mut w0);
            }
            Instruction::Alus {
                dtype,
                op,
                td,
                ts,
                rs,
                tc,
            } => {
                put(7, 0, 4, &mut w0);
                put(dtype.encode() as u64, 4, 3, &mut w0);
                put(op.encode() as u64, 8, 4, &mut w0);
                put(td.index() as u64, 12, 6, &mut w0);
                put(ts.index() as u64, 18, 6, &mut w0);
                put(enc_tc(tc), 30, 7, &mut w0);
                put(rs.index() as u64, 37, 6, &mut w0);
            }
            Instruction::Rng {
                td1,
                td2,
                ts1,
                ts2,
                rs1,
                tc,
            } => {
                put(8, 0, 4, &mut w0);
                put(td1.index() as u64, 12, 6, &mut w0);
                put(ts1.index() as u64, 18, 6, &mut w0);
                put(ts2.index() as u64, 24, 6, &mut w0);
                put(enc_tc(tc), 30, 7, &mut w0);
                put(rs1.index() as u64, 37, 6, &mut w0);
                put(td2.index() as u64, 55, 6, &mut w0);
            }
        }
        [w0, base, 0]
    }

    /// Decodes the 192-bit wire format.
    ///
    /// # Errors
    /// Returns [`IllegalInstruction::BadEncoding`] for unknown opcodes or
    /// out-of-range fields.
    pub fn decode(words: [u64; 3]) -> Result<Self, IllegalInstruction> {
        let w0 = words[0];
        let base = words[1];
        let get = |lo: u32, bits: u32| -> u64 { (w0 >> lo) & ((1 << bits) - 1) };
        let tile = |lo: u32| -> Result<TileId, IllegalInstruction> {
            let v = get(lo, 6) as u8;
            if v < TileId::MAX {
                Ok(TileId::new(v))
            } else {
                Err(IllegalInstruction::BadEncoding)
            }
        };
        let reg = |lo: u32| -> Result<RegId, IllegalInstruction> {
            let v = get(lo, 6) as u8;
            if v < RegId::MAX {
                Ok(RegId::new(v))
            } else {
                Err(IllegalInstruction::BadEncoding)
            }
        };
        let tc = if get(36, 1) == 1 {
            Some(tile(30)?)
        } else {
            None
        };
        let dtype = DType::decode(get(4, 3) as u8).ok_or(IllegalInstruction::BadEncoding)?;
        let op = AluOp::decode(get(8, 4) as u8);
        let instr = match get(0, 4) {
            1 => Instruction::Ild {
                dtype,
                base,
                td: tile(12)?,
                ts1: tile(18)?,
                tc,
            },
            2 => Instruction::Ist {
                dtype,
                base,
                ts1: tile(18)?,
                ts2: tile(24)?,
                tc,
            },
            3 => Instruction::Irmw {
                dtype,
                op: op.ok_or(IllegalInstruction::BadEncoding)?,
                base,
                ts1: tile(18)?,
                ts2: tile(24)?,
                tc,
            },
            4 => Instruction::Sld {
                dtype,
                base,
                td: tile(12)?,
                rs1: reg(37)?,
                rs2: reg(43)?,
                rs3: reg(49)?,
                tc,
            },
            5 => Instruction::Sst {
                dtype,
                base,
                ts: tile(18)?,
                rs1: reg(37)?,
                rs2: reg(43)?,
                rs3: reg(49)?,
                tc,
            },
            6 => Instruction::Aluv {
                dtype,
                op: op.ok_or(IllegalInstruction::BadEncoding)?,
                td: tile(12)?,
                ts1: tile(18)?,
                ts2: tile(24)?,
                tc,
            },
            7 => Instruction::Alus {
                dtype,
                op: op.ok_or(IllegalInstruction::BadEncoding)?,
                td: tile(12)?,
                ts: tile(18)?,
                rs: reg(37)?,
                tc,
            },
            8 => Instruction::Rng {
                td1: tile(12)?,
                td2: tile(55)?,
                ts1: tile(18)?,
                ts2: tile(24)?,
                rs1: reg(37)?,
                tc,
            },
            _ => return Err(IllegalInstruction::BadEncoding),
        };
        Ok(instr)
    }
}

/// ISA-level legality violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IllegalInstruction {
    /// IRMW with an operation the hardware cannot reorder.
    NonAssociativeRmw(AluOp),
    /// Bitwise/shift operation applied to a float type.
    IntegerOpOnFloat(AluOp, DType),
    /// A destination tile also appears as a source.
    DestIsSource(TileId),
    /// Undecodable wire format.
    BadEncoding,
}

impl fmt::Display for IllegalInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IllegalInstruction::NonAssociativeRmw(op) => {
                write!(f, "IRMW requires an associative/commutative op, got {op}")
            }
            IllegalInstruction::IntegerOpOnFloat(op, dt) => {
                write!(f, "integer-only op {op} applied to float type {dt}")
            }
            IllegalInstruction::DestIsSource(t) => {
                write!(f, "destination tile {t} also appears as a source")
            }
            IllegalInstruction::BadEncoding => write!(f, "undecodable instruction encoding"),
        }
    }
}

impl std::error::Error for IllegalInstruction {}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instructions() -> Vec<Instruction> {
        let t = |i| TileId::new(i);
        let r = |i| RegId::new(i);
        vec![
            Instruction::ild(DType::U32, 0x1000, t(0), t(1)),
            Instruction::ild(DType::F64, 0x00de_adbe_ef00, t(2), t(3)).with_condition(t(4)),
            Instruction::ist(DType::I32, 0x2000, t(5), t(6)),
            Instruction::irmw(DType::F32, AluOp::Add, 0x3000, t(7), t(8)).with_condition(t(9)),
            Instruction::sld(DType::U64, 0x4000, t(10), r(0), r(1), r(2)),
            Instruction::Sst {
                dtype: DType::U32,
                base: 0x5000,
                ts: t(11),
                rs1: r(3),
                rs2: r(4),
                rs3: r(5),
                tc: Some(t(12)),
            },
            Instruction::Aluv {
                dtype: DType::I64,
                op: AluOp::Max,
                td: t(13),
                ts1: t(14),
                ts2: t(15),
                tc: None,
            },
            Instruction::Alus {
                dtype: DType::U32,
                op: AluOp::Shr,
                td: t(16),
                ts: t(17),
                rs: r(6),
                tc: Some(t(18)),
            },
            Instruction::Rng {
                td1: t(19),
                td2: t(20),
                ts1: t(21),
                ts2: t(22),
                rs1: r(7),
                tc: None,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips_all_instructions() {
        for instr in all_instructions() {
            let words = instr.encode();
            let back = Instruction::decode(words).unwrap();
            assert_eq!(back, instr, "{instr:?}");
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(
            Instruction::decode([0, 0, 0]),
            Err(IllegalInstruction::BadEncoding)
        );
        assert_eq!(
            Instruction::decode([15, 0, 0]),
            Err(IllegalInstruction::BadEncoding)
        );
    }

    #[test]
    fn rmw_legality_enforced() {
        let bad = Instruction::irmw(DType::U32, AluOp::Sub, 0, TileId::new(0), TileId::new(1));
        assert_eq!(
            bad.validate(),
            Err(IllegalInstruction::NonAssociativeRmw(AluOp::Sub))
        );
        let good = Instruction::irmw(DType::U32, AluOp::Add, 0, TileId::new(0), TileId::new(1));
        assert!(good.validate().is_ok());
    }

    #[test]
    fn integer_op_on_float_rejected() {
        let bad = Instruction::Aluv {
            dtype: DType::F32,
            op: AluOp::And,
            td: TileId::new(0),
            ts1: TileId::new(1),
            ts2: TileId::new(2),
            tc: None,
        };
        assert!(matches!(
            bad.validate(),
            Err(IllegalInstruction::IntegerOpOnFloat(AluOp::And, DType::F32))
        ));
    }

    #[test]
    fn dest_equal_source_rejected() {
        let bad = Instruction::ild(DType::U32, 0, TileId::new(3), TileId::new(3));
        assert_eq!(
            bad.validate(),
            Err(IllegalInstruction::DestIsSource(TileId::new(3)))
        );
    }

    #[test]
    fn source_and_dest_listing() {
        let i = Instruction::irmw(DType::U32, AluOp::Add, 0, TileId::new(1), TileId::new(2))
            .with_condition(TileId::new(3));
        assert!(i.dest_tiles().is_empty());
        assert_eq!(
            i.source_tiles(),
            vec![TileId::new(1), TileId::new(2), TileId::new(3)]
        );
        let r = Instruction::Rng {
            td1: TileId::new(4),
            td2: TileId::new(5),
            ts1: TileId::new(6),
            ts2: TileId::new(7),
            rs1: RegId::new(0),
            tc: None,
        };
        assert_eq!(r.dest_tiles(), vec![TileId::new(4), TileId::new(5)]);
    }

    #[test]
    #[should_panic(expected = "tile id out of range")]
    fn tile_id_range_checked() {
        let _ = TileId::new(32);
    }

    #[test]
    fn decode_rejects_out_of_range_condition_tile() {
        // A set condition-present bit (36) with a 6-bit tile field beyond
        // TileId::MAX must return BadEncoding, never panic (regression:
        // the tc field was decoded without the range check).
        let w0 = 1u64 | (63 << 30) | (1 << 36); // ILD, tc = t63
        assert_eq!(
            Instruction::decode([w0, 0x1000, 0]),
            Err(IllegalInstruction::BadEncoding)
        );
    }
}
