//! DX100 configuration (paper Table 3 plus ablation switches).

/// Configuration of one DX100 instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dx100Config {
    /// Elements per scratchpad tile (Table 3: 16K).
    pub tile_elems: usize,
    /// Number of scratchpad tiles (Table 3: 32).
    pub num_tiles: usize,
    /// Indirect-unit fill throughput: elements inserted into the Row/Word
    /// tables per cycle.
    pub fill_rate: usize,
    /// Stream-unit throughput: elements processed per cycle.
    pub stream_rate: usize,
    /// ALU lanes (Table 3: 16).
    pub alu_lanes: usize,
    /// Range-fuser output elements per cycle.
    pub range_rate: usize,
    /// Line responses the indirect unit's Word Modifier absorbs per cycle.
    pub responses_per_cycle: usize,
    /// Stream-unit Request Table entries (Table 3: 128) — its MSHR-like
    /// bound on outstanding lines.
    pub request_table_entries: usize,
    /// Row Table: row entries per slice (Table 3: 64).
    pub rows_per_slice: usize,
    /// Row Table: column entries per row entry (Table 3: 8).
    pub cols_per_row_entry: usize,
    /// Outstanding line requests the indirect unit may have in flight.
    pub indirect_max_inflight: usize,
    /// TLB entries for huge-page PTEs (Table 3: 256).
    pub tlb_entries: usize,
    /// Fill-stage stall on a TLB miss, in cycles.
    pub tlb_miss_latency: u64,
    /// Latency of a core load served from the scratchpad region, in cycles
    /// (applied at the memory side of the cache hierarchy).
    pub spd_read_latency: u64,
    /// One-way latency of a core MMIO store to DX100, in cycles.
    pub mmio_latency: u64,
    /// Ablation: reorder accesses by DRAM row (Row Table). When off,
    /// requests issue in tile order.
    pub reorder: bool,
    /// Ablation: coalesce words sharing a line (Word Table). When off, each
    /// word issues its own line request.
    pub coalesce: bool,
    /// Ablation: interleave request issue across channels and bank groups.
    /// When off, slices drain sequentially.
    pub interleave: bool,
    /// Section 3.6 design choice: indirect accesses snoop the directory and
    /// go straight to DRAM on a miss. When false, every indirect access is
    /// injected into the LLC instead.
    pub direct_dram: bool,
}

impl Dx100Config {
    /// The paper's Table 3 configuration: 2 MB scratchpad as 32 × 16K tiles,
    /// 64×8 Row Table slices, 128-entry Request Table, 16 ALU lanes,
    /// 256-entry TLB.
    pub fn paper() -> Self {
        Dx100Config {
            tile_elems: 16 * 1024,
            num_tiles: 32,
            fill_rate: 16,
            stream_rate: 16,
            alu_lanes: 16,
            range_rate: 4,
            responses_per_cycle: 4,
            request_table_entries: 128,
            rows_per_slice: 64,
            cols_per_row_entry: 8,
            indirect_max_inflight: 96,
            tlb_entries: 256,
            tlb_miss_latency: 100,
            spd_read_latency: 8,
            mmio_latency: 40,
            reorder: true,
            coalesce: true,
            interleave: true,
            direct_dram: true,
        }
    }

    /// Paper configuration with a different tile size (Figure 13 sweep).
    pub fn with_tile_elems(mut self, tile_elems: usize) -> Self {
        self.tile_elems = tile_elems;
        self
    }

    /// Scratchpad capacity in bytes (4-byte words, as in Table 3's 2 MB =
    /// 32 × 16K × 4 B).
    pub fn scratchpad_bytes(&self) -> usize {
        self.num_tiles * self.tile_elems * 4
    }
}

impl Default for Dx100Config {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scratchpad_is_2mb() {
        assert_eq!(Dx100Config::paper().scratchpad_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn tile_size_override() {
        let c = Dx100Config::paper().with_tile_elems(1024);
        assert_eq!(c.tile_elems, 1024);
        assert_eq!(c.num_tiles, 32);
    }
}
