//! The Indirect Access unit (paper Section 3.2): Row Table, Word Table,
//! and the request generator that reorders, coalesces, and interleaves
//! bulk indirect accesses.
//!
//! * **Row Table** — one slice per DRAM bank (channel × rank × bank-group ×
//!   bank). A slice holds up to 64 row entries; each row entry holds up to 8
//!   column (cache-line) entries. Filling a tile populates the table; the
//!   request generator then drains each row's columns consecutively, so the
//!   DRAM controller sees long runs of same-row accesses.
//! * **Word Table** — per column entry, the list of tile elements (words)
//!   that live in that line, in insertion (= iteration) order. One line
//!   request serves all of them: coalescing.
//! * **Request generator** — walks slices in channel-fastest order so
//!   consecutive requests alternate DRAM channels and bank groups.
//!
//! Operation follows the paper's three stages: *fill* (translate, snoop the
//! directory for the H bit, insert into the tables), *request* (issue one
//! line access per column entry, directly to DRAM unless the H bit routes it
//! to the LLC), and *response* (walk the word list; extract words for ILD,
//! merge and write back for IST/IRMW).

use std::collections::{HashMap, VecDeque};

use dx100_common::{value, Addr, AluOp, Cycle, DType, LineAddr, ReqId};
use dx100_dram::{AddrMap, Organization};

use crate::config::Dx100Config;
use crate::controller::DispatchedInstr;
use crate::engine::{IdAlloc, UnitTag};
use crate::isa::{Instruction, TileId};
use crate::memimg::MemoryImage;
use crate::ports::MemPorts;
use crate::scratchpad::Scratchpad;
use crate::stats::Dx100Stats;
use crate::tlb::Tlb;

/// What an indirect job does with each word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IndKind {
    Load { td: TileId },
    Store { ts2: TileId },
    Rmw { op: AluOp, ts2: TileId },
}

/// One word in the Word Table: tile iteration number and its byte address.
#[derive(Debug, Clone, Copy)]
struct Word {
    i: usize,
    addr: Addr,
}

/// A column entry: one cache line plus its linked word list.
#[derive(Clone, Debug)]
struct ColEntry {
    /// Unique id, assigned in creation order.
    id: u64,
    job: u64,
    line: LineAddr,
    /// H bit: line was valid in the cache hierarchy at fill time.
    h: bool,
    sent: bool,
    sendable: bool,
    words: Vec<Word>,
}

/// A row entry: one DRAM row within a slice.
#[derive(Clone, Debug)]
struct RowEntry {
    row: u64,
    cols: Vec<ColEntry>,
}

/// One Row Table slice (one DRAM bank).
#[derive(Clone, Debug, Default)]
struct Slice {
    rows: Vec<RowEntry>,
    /// The row currently being drained, so its columns issue consecutively.
    active_row: Option<u64>,
}

#[derive(Clone, Debug)]
struct IndirectJob {
    d: DispatchedInstr,
    kind: IndKind,
    dtype: DType,
    base: Addr,
    ts1: TileId,
    tc: Option<TileId>,
    n: Option<usize>,
    next: usize,
    fill_done: bool,
    /// ILD: elements not yet produced/skipped.
    pending_elems: usize,
    /// Columns created and not yet fully processed.
    open_cols: usize,
    /// IST/IRMW: write requests issued and not yet acknowledged.
    writes_outstanding: usize,
    /// IST duplicate-index ordering: last applied iteration per address.
    last_applied: HashMap<Addr, usize>,
}

impl IndirectJob {
    fn done(&self) -> bool {
        self.fill_done
            && self.open_cols == 0
            && self.writes_outstanding == 0
            && (!matches!(self.kind, IndKind::Load { .. }) || self.pending_elems == 0)
    }
}

/// The timed Indirect Access unit.
#[derive(Clone, Debug)]
pub struct IndirectUnit {
    cfg: Dx100Config,
    org: Organization,
    map: AddrMap,
    jobs: VecDeque<IndirectJob>,
    slices: Vec<Slice>,
    /// Slice visit order for interleaving (channel fastest, then bank group).
    slice_order: Vec<usize>,
    rr: usize,
    /// Insertion-order issue queue used when reordering is disabled:
    /// (slice, line) pairs identifying columns.
    fifo: VecDeque<(usize, LineAddr, u64)>,
    next_col_id: u64,
    /// Read requests in flight: id → (slice index, column id).
    outstanding: HashMap<ReqId, (usize, u64)>,
    /// Write requests in flight: id → job handle.
    outstanding_writes: HashMap<ReqId, u64>,
    /// Write-backs waiting for request-buffer space: (line, h, job).
    pending_writes: VecDeque<(LineAddr, bool, u64)>,
    /// Line responses waiting for the Word Modifier.
    resp_queue: VecDeque<ReqId>,
    fill_stall_until: Cycle,
    /// Lines with open (unprocessed) column entries, and the owning job:
    /// a second job touching the same line stalls until the first job's
    /// column completes, preserving cross-instruction program order on
    /// same-address accesses.
    line_owners: HashMap<LineAddr, (u64, usize)>,
    /// Running count of column entries across all slices, so the per-cycle
    /// queue-depth probes ([`IndirectUnit::buffered_columns`]) are O(1)
    /// instead of walking the whole Row Table.
    buffered_cols: usize,
}

impl IndirectUnit {
    /// Creates the unit for a given DRAM organization/mapping (the Row Table
    /// geometry mirrors the physical bank layout).
    pub fn new(cfg: Dx100Config, org: Organization, map: AddrMap) -> Self {
        let num_slices = org.channels * org.banks_per_channel();
        // Channel varies fastest, then bank group, then bank: consecutive
        // requests interleave channels and bank groups.
        let mut slice_order = Vec::with_capacity(num_slices);
        for rank in 0..org.ranks {
            for bank in 0..org.banks_per_group {
                for bg in 0..org.bank_groups {
                    for ch in 0..org.channels {
                        let within = org.bank_index(rank, bg, bank);
                        slice_order.push(ch * org.banks_per_channel() + within);
                    }
                }
            }
        }
        IndirectUnit {
            cfg,
            org,
            map,
            jobs: VecDeque::new(),
            slices: (0..num_slices).map(|_| Slice::default()).collect(),
            slice_order,
            rr: 0,
            fifo: VecDeque::new(),
            next_col_id: 0,
            outstanding: HashMap::new(),
            outstanding_writes: HashMap::new(),
            pending_writes: VecDeque::new(),
            resp_queue: VecDeque::new(),
            fill_stall_until: 0,
            line_owners: HashMap::new(),
            buffered_cols: 0,
        }
    }

    /// Accepts a dispatched ILD/IST/IRMW.
    pub fn enqueue(&mut self, d: DispatchedInstr) {
        let (kind, dtype, base, ts1, tc) = match d.instr {
            Instruction::Ild {
                dtype,
                base,
                td,
                ts1,
                tc,
            } => (IndKind::Load { td }, dtype, base, ts1, tc),
            Instruction::Ist {
                dtype,
                base,
                ts1,
                ts2,
                tc,
            } => (IndKind::Store { ts2 }, dtype, base, ts1, tc),
            Instruction::Irmw {
                dtype,
                op,
                base,
                ts1,
                ts2,
                tc,
            } => (IndKind::Rmw { op, ts2 }, dtype, base, ts1, tc),
            ref other => unreachable!("non-indirect instruction {other:?} in indirect unit"),
        };
        self.jobs.push_back(IndirectJob {
            d,
            kind,
            dtype,
            base,
            ts1,
            tc,
            n: None,
            next: 0,
            fill_done: false,
            pending_elems: 0,
            open_cols: 0,
            writes_outstanding: 0,
            last_applied: HashMap::new(),
        });
    }

    /// Whether no job, column, or in-flight request remains.
    pub fn is_idle(&self) -> bool {
        self.jobs.is_empty()
            && self.outstanding.is_empty()
            && self.outstanding_writes.is_empty()
            && self.pending_writes.is_empty()
            && self.resp_queue.is_empty()
    }

    /// Queues a completed line/write acknowledgement for the Word Modifier.
    pub fn push_response(&mut self, id: ReqId) {
        self.resp_queue.push_back(id);
    }

    /// Whether the next tick's `fill_step` / `request_step` / `response_step`
    /// / `poll_retired` sequence would be a pure no-op given frozen
    /// scratchpad, response, and DRAM state (the engine's quiescence check).
    ///
    /// Conservative: anything the tick might mutate — TLB lookup counters,
    /// Row-Table stall stats, request ids consumed on refused DRAM requests,
    /// a stale active-row rotation — classifies as active.
    pub fn quiescent(&self, now: Cycle, spd: &Scratchpad) -> bool {
        if !self.resp_queue.is_empty() || !self.pending_writes.is_empty() {
            return false;
        }
        // poll_retired pops completed head jobs.
        if self.jobs.front().is_some_and(|j| j.done()) {
            return false;
        }
        self.fill_quiescent(now, spd) && self.request_quiescent()
    }

    /// The unit's only self-timed wakeup: expiry of the TLB-miss backoff,
    /// when a job still has elements to fill behind it.
    pub fn next_time_event(&self, now: Cycle) -> Option<Cycle> {
        (now < self.fill_stall_until && self.jobs.iter().any(|j| !j.fill_done))
            .then_some(self.fill_stall_until)
    }

    /// Whether `fill_step` would return without mutating anything.
    fn fill_quiescent(&self, now: Cycle, spd: &Scratchpad) -> bool {
        if now < self.fill_stall_until {
            return true; // TLB-miss backoff window
        }
        let Some(job) = self.jobs.iter().find(|j| !j.fill_done) else {
            return true; // every job has filled
        };
        let Some(n) = job.n else {
            // Sizing waits only while the index tile length is unknown.
            return spd.tile(job.ts1).len().is_none();
        };
        if job.next >= n {
            return false; // would mark the job fill-done
        }
        let i = job.next;
        // Chained on unfinished index / condition / store-value elements:
        // these gates sit before the TLB lookup, so the tick stays pure.
        if !spd.tile(job.ts1).finished(i) {
            return true;
        }
        if job.tc.is_some_and(|c| !spd.tile(c).finished(i)) {
            return true;
        }
        let value_tile = match job.kind {
            IndKind::Store { ts2 } | IndKind::Rmw { ts2, .. } => Some(ts2),
            IndKind::Load { .. } => None,
        };
        if value_tile.is_some_and(|t| !spd.tile(t).finished(i)) {
            return true;
        }
        // All gates pass: the tick would at least touch the TLB (and may
        // count a Row-Table stall), so it is not a no-op.
        false
    }

    /// Whether `request_step` would return without mutating anything. The
    /// caller has established `pending_writes` is empty (a pending write
    /// consumes a request id every tick, even when DRAM refuses it).
    fn request_quiescent(&self) -> bool {
        if self.outstanding.len() >= self.cfg.indirect_max_inflight {
            return true; // in-flight cap: pure structural stall
        }
        if !self.cfg.reorder {
            // Insertion order: quiescent only while the head column exists
            // and is not yet sendable (a sent or stale head would be popped).
            return match self.fifo.front() {
                None => true,
                Some(&(slice_idx, _, col_id)) => self
                    .col_by_id(slice_idx, col_id)
                    .is_some_and(|c| !c.sent && !c.sendable),
            };
        }
        // Reorder mode: `pick_in_slice` clears a stale active row (a
        // mutation), so quiescence needs every slice settled with nothing
        // sendable left unsent.
        self.slices.iter().all(|s| {
            s.active_row.is_none()
                && s.rows
                    .iter()
                    .all(|r| r.cols.iter().all(|c| c.sent || !c.sendable))
        })
    }

    /// Requests still draining: in-flight reads/writes plus responses queued
    /// for the Word Modifier (drives the `drain` trace phase).
    pub fn pending_responses(&self) -> usize {
        self.outstanding.len() + self.outstanding_writes.len() + self.resp_queue.len()
    }

    /// Column entries buffered in the Row Table, across all slices (the
    /// DX100 queue-depth signal epoch samplers report). O(1): probed every
    /// cycle by the profiler.
    pub fn buffered_columns(&self) -> usize {
        debug_assert_eq!(
            self.buffered_cols,
            self.slices
                .iter()
                .map(|s| s.rows.iter().map(|r| r.cols.len()).sum::<usize>())
                .sum::<usize>(),
            "buffered-column count drifted from the Row Table"
        );
        self.buffered_cols
    }

    /// Diagnostic summary of internal occupancy.
    pub fn debug_state(&self) -> String {
        let cols: usize = self
            .slices
            .iter()
            .map(|s| s.rows.iter().map(|r| r.cols.len()).sum::<usize>())
            .sum();
        let unsent: usize = self
            .slices
            .iter()
            .flat_map(|s| s.rows.iter())
            .flat_map(|r| r.cols.iter())
            .filter(|c| !c.sent)
            .count();
        let sendable: usize = self
            .slices
            .iter()
            .flat_map(|s| s.rows.iter())
            .flat_map(|r| r.cols.iter())
            .filter(|c| c.sendable && !c.sent)
            .count();
        format!(
            "jobs={} cols={} unsent={} sendable={} fifo={} outstanding={} owrites={} pwrites={} resps={} owners={}",
            self.jobs.len(), cols, unsent, sendable, self.fifo.len(),
            self.outstanding.len(), self.outstanding_writes.len(),
            self.pending_writes.len(), self.resp_queue.len(), self.line_owners.len()
        )
    }

    /// Fill stage: translate, snoop, insert into the Row/Word tables.
    pub fn fill_step(
        &mut self,
        now: Cycle,
        spd: &mut Scratchpad,
        ports: &mut dyn MemPorts,
        tlb: &mut Tlb,
        stats: &mut Dx100Stats,
    ) {
        if now < self.fill_stall_until {
            return;
        }
        // The first job that has not finished filling.
        let Some(job_idx) = self.jobs.iter().position(|j| !j.fill_done) else {
            return;
        };
        // Only begin a new job's fill once the previous job finished filling
        // (jobs fill strictly in order; draining overlaps).
        if job_idx > 0 && !self.jobs[job_idx - 1].fill_done {
            return;
        }
        for _ in 0..self.cfg.fill_rate {
            let job = &mut self.jobs[job_idx];
            if job.n.is_none() {
                let Some(n) = spd.tile(job.ts1).len() else {
                    return;
                };
                job.n = Some(n);
                if let IndKind::Load { td } = job.kind {
                    assert!(n <= spd.capacity(), "ILD source exceeds tile capacity");
                    spd.set_len(td, n);
                }
                job.pending_elems = n;
            }
            let n = job.n.unwrap();
            if job.next >= n {
                job.fill_done = true;
                let handle = job.d.handle;
                self.mark_job_sendable(handle);
                return;
            }
            let i = job.next;
            // Gate on source finish bits: index, condition, store value.
            if !spd.tile(job.ts1).finished(i) {
                return;
            }
            if job.tc.is_some_and(|c| !spd.tile(c).finished(i)) {
                return;
            }
            let value_tile = match job.kind {
                IndKind::Store { ts2 } | IndKind::Rmw { ts2, .. } => Some(ts2),
                IndKind::Load { .. } => None,
            };
            if value_tile.is_some_and(|t| !spd.tile(t).finished(i)) {
                return;
            }
            if job.tc.is_some_and(|c| spd.tile(c).get(i) == 0) {
                stats.condition_skips += 1;
                if let IndKind::Load { td } = job.kind {
                    spd.skip(td, i);
                    job.pending_elems -= 1;
                }
                job.next += 1;
                continue;
            }
            let idx = spd.tile(job.ts1).get(i);
            let addr = job.base + idx * job.dtype.size_bytes();
            if !tlb.lookup(addr) {
                stats.tlb_misses += 1;
                self.fill_stall_until = now + self.cfg.tlb_miss_latency;
                return;
            }
            stats.tlb_hits += 1;
            let line = LineAddr::containing(addr);
            let coord = self.map.decode(line, &self.org);
            let slice_idx =
                coord.channel * self.org.banks_per_channel() + coord.bank_index(&self.org);
            let handle = self.jobs[job_idx].d.handle;
            if !self.insert_word(
                slice_idx,
                coord.row,
                line,
                Word { i, addr },
                handle,
                ports,
                stats,
            ) {
                // Slice at capacity (or the line is pinned by an earlier
                // instruction). If any *other* job's columns still occupy
                // the slice, they are already sendable and draining — just
                // stall until space frees, preserving this tile's carefully
                // reordered issue. Only when the slice is full of the
                // current tile's own columns do we start draining it early
                // (the paper's capacity-pressure rule).
                let own_pressure = self.slices[slice_idx]
                    .rows
                    .iter()
                    .flat_map(|r| r.cols.iter())
                    .all(|c| c.job == handle);
                if own_pressure {
                    // "...or the Row Table reaches capacity": the capacity
                    // trigger drains the *whole table*, so the request
                    // generator sees an even, fully interleavable supply
                    // rather than just the slice the fill happened to jam.
                    self.mark_job_sendable(handle);
                }
                stats.rowtable_stall_cycles += 1;
                return;
            }
            self.jobs[job_idx].next += 1;
        }
    }

    /// Inserts one word; returns false when the slice is full or the line
    /// is pinned by an earlier instruction's outstanding column.
    #[allow(clippy::too_many_arguments)]
    fn insert_word(
        &mut self,
        slice_idx: usize,
        row: u64,
        line: LineAddr,
        word: Word,
        job: u64,
        ports: &mut dyn MemPorts,
        stats: &mut Dx100Stats,
    ) -> bool {
        // Cross-instruction same-line ordering: wait for the earlier job's
        // column to complete before touching the line.
        if let Some(&(owner, _)) = self.line_owners.get(&line) {
            if owner != job {
                return false;
            }
        }
        let cols_cap = self.cfg.cols_per_row_entry;
        let rows_cap = self.cfg.rows_per_slice;
        let slice = &mut self.slices[slice_idx];
        if self.cfg.coalesce {
            // Find a valid, unsent column for the same line and job.
            for r in slice.rows.iter_mut().filter(|r| r.row == row) {
                if let Some(col) = r
                    .cols
                    .iter_mut()
                    .find(|c| !c.sent && c.line == line && c.job == job)
                {
                    col.words.push(word);
                    stats.words_coalesced += 1;
                    return true;
                }
            }
        }
        // Need a new column entry: find a row entry with space.
        let h = if self.cfg.direct_dram {
            let hit = ports.snoop(line);
            if hit {
                stats.snoop_hits += 1;
            } else {
                stats.snoop_misses += 1;
            }
            hit
        } else {
            true // LLC-injection mode: everything goes through the cache
        };
        let col_id = self.next_col_id;
        self.next_col_id += 1;
        let col = ColEntry {
            id: col_id,
            job,
            line,
            h,
            sent: false,
            sendable: !self.cfg.reorder,
            words: vec![word],
        };
        if let Some(r) = slice
            .rows
            .iter_mut()
            .find(|r| r.row == row && r.cols.len() < cols_cap)
        {
            r.cols.push(col);
        } else {
            if slice.rows.len() >= rows_cap {
                self.next_col_id -= 1; // roll back the unused id
                return false;
            }
            slice.rows.push(RowEntry {
                row,
                cols: vec![col],
            });
        }
        self.buffered_cols += 1;
        if !self.cfg.reorder {
            self.fifo.push_back((slice_idx, line, col_id));
        }
        let owner = self.line_owners.entry(line).or_insert((job, 0));
        owner.1 += 1;
        let job_entry = self
            .jobs
            .iter_mut()
            .find(|j| j.d.handle == job)
            .expect("job for inserted word");
        job_entry.open_cols += 1;
        true
    }

    /// Marks every column of `job` sendable (tile fill complete).
    fn mark_job_sendable(&mut self, job: u64) {
        for slice in &mut self.slices {
            for row in &mut slice.rows {
                for col in &mut row.cols {
                    if col.job == job {
                        col.sendable = true;
                    }
                }
            }
        }
    }

    /// Request stage: drain pending writes, then issue column reads in
    /// interleaved row order.
    pub fn request_step(
        &mut self,
        now: Cycle,
        ports: &mut dyn MemPorts,
        ids: &mut IdAlloc,
        stats: &mut Dx100Stats,
        requests_per_cycle: usize,
    ) {
        let mut budget = requests_per_cycle;
        // Writes first: they hold job retirement.
        while budget > 0 {
            let Some(&(line, h, job)) = self.pending_writes.front() else {
                break;
            };
            let id = ids.alloc(UnitTag::IndirectWrite);
            let accepted = if h {
                ports.llc_request(id, line, true, now);
                true
            } else {
                ports.dram_try_request(id, line, true, now)
            };
            if !accepted {
                ids.cancel(id);
                stats.reqbuf_stall_cycles += 1;
                return;
            }
            self.pending_writes.pop_front();
            self.outstanding_writes.insert(id, job);
            stats.indirect_line_writes += 1;
            budget -= 1;
        }
        if self.outstanding.len() >= self.cfg.indirect_max_inflight {
            return;
        }
        while budget > 0 {
            let Some((slice_idx, col_id)) = self.pick_column() else {
                break;
            };
            let (line, h) = {
                let col = self.col_by_id(slice_idx, col_id).expect("picked column");
                (col.line, col.h)
            };
            let id = ids.alloc(UnitTag::IndirectRead);
            let accepted = if h {
                ports.llc_request(id, line, false, now);
                true
            } else {
                ports.dram_try_request(id, line, false, now)
            };
            if !accepted {
                ids.cancel(id);
                stats.reqbuf_stall_cycles += 1;
                if !self.cfg.reorder {
                    // Insertion-order mode popped the candidate; put it
                    // back and retry next cycle (order must hold).
                    self.fifo.push_front((slice_idx, line, col_id));
                    return;
                }
                // Rewind the rotation so this column retries next cycle in
                // order; the buffer drains at DRAM speed regardless.
                self.rr = (self.rr + self.slice_order.len() - 1) % self.slice_order.len();
                return;
            }
            self.col_by_id_mut(slice_idx, col_id)
                .expect("picked column")
                .sent = true;
            self.outstanding.insert(id, (slice_idx, col_id));
            stats.indirect_line_reads += 1;
            budget -= 1;
            if self.outstanding.len() >= self.cfg.indirect_max_inflight {
                return;
            }
        }
    }

    /// Chooses the next column to issue, honoring the reorder/interleave
    /// configuration. Returns (slice index, column id).
    fn pick_column(&mut self) -> Option<(usize, u64)> {
        if !self.cfg.reorder {
            // Strict insertion order.
            while let Some(&(slice_idx, line, col_id)) = self.fifo.front() {
                let _ = line;
                if self
                    .col_by_id(slice_idx, col_id)
                    .is_some_and(|c| !c.sent && c.sendable)
                {
                    self.fifo.pop_front();
                    return Some((slice_idx, col_id));
                }
                if self.col_by_id(slice_idx, col_id).is_none()
                    || self.col_by_id(slice_idx, col_id).is_some_and(|c| c.sent)
                {
                    self.fifo.pop_front();
                    continue;
                }
                return None; // head not sendable yet
            }
            return None;
        }
        let num = self.slice_order.len();
        for step in 0..num {
            let pos = (self.rr + step) % num;
            let slice_idx = self.slice_order[pos];
            if let Some(col_id) = self.pick_in_slice(slice_idx) {
                if self.cfg.interleave {
                    // Advance past this slice so the next request goes to a
                    // different channel / bank group.
                    self.rr = (pos + 1) % num;
                } else {
                    // Stay on this slice until it drains completely.
                    self.rr = pos;
                }
                return Some((slice_idx, col_id));
            }
        }
        None
    }

    /// Finds the next sendable column in a slice, staying on the active row
    /// until it is fully issued (row-buffer locality).
    fn pick_in_slice(&mut self, slice_idx: usize) -> Option<u64> {
        let slice = &mut self.slices[slice_idx];
        if let Some(active) = slice.active_row {
            if let Some(id) = find_unsent(slice, active) {
                return Some(id);
            }
            slice.active_row = None;
        }
        // Pick the first row with any sendable, unsent column.
        let row_val = slice.rows.iter().find_map(|r| {
            r.cols
                .iter()
                .any(|c| c.sendable && !c.sent)
                .then_some(r.row)
        })?;
        slice.active_row = Some(row_val);
        find_unsent(slice, row_val)
    }

    fn col_by_id(&self, slice_idx: usize, col_id: u64) -> Option<&ColEntry> {
        self.slices[slice_idx]
            .rows
            .iter()
            .flat_map(|r| r.cols.iter())
            .find(|c| col_matches(c, col_id))
    }

    fn col_by_id_mut(&mut self, slice_idx: usize, col_id: u64) -> Option<&mut ColEntry> {
        self.slices[slice_idx]
            .rows
            .iter_mut()
            .flat_map(|r| r.cols.iter_mut())
            .find(|c| col_matches(c, col_id))
    }

    /// Response stage (Word Modifier): walk the word list, produce/merge,
    /// and schedule write-backs.
    pub fn response_step(
        &mut self,
        spd: &mut Scratchpad,
        mem: &mut MemoryImage,
        stats: &mut Dx100Stats,
    ) -> Vec<u64> {
        let mut retired = Vec::new();
        for _ in 0..self.cfg.responses_per_cycle {
            let Some(id) = self.resp_queue.pop_front() else {
                break;
            };
            if let Some(job_handle) = self.outstanding_writes.remove(&id) {
                if let Some(job) = self.jobs.iter_mut().find(|j| j.d.handle == job_handle) {
                    job.writes_outstanding -= 1;
                    if job.done() {
                        retired.push(job_handle);
                    }
                }
                continue;
            }
            let Some((slice_idx, col_id)) = self.outstanding.remove(&id) else {
                debug_assert!(false, "unknown indirect response {id}");
                continue;
            };
            let col = self
                .remove_col(slice_idx, col_id)
                .expect("column for response");
            let job = self
                .jobs
                .iter_mut()
                .find(|j| j.d.handle == col.job)
                .expect("job for column");
            match job.kind {
                IndKind::Load { td } => {
                    for w in &col.words {
                        spd.produce(td, w.i, mem.read(job.dtype, w.addr));
                    }
                    job.pending_elems -= col.words.len();
                    job.open_cols -= 1;
                }
                IndKind::Store { ts2 } => {
                    for w in &col.words {
                        // Duplicate indices: only ever move forward in
                        // iteration order so last-writer-wins is preserved
                        // even if two columns for one line complete out of
                        // order.
                        let apply = job.last_applied.get(&w.addr).is_none_or(|&last| w.i > last);
                        if apply {
                            let v = value::truncate(job.dtype, spd.tile(ts2).get(w.i));
                            mem.write(job.dtype, w.addr, v);
                            job.last_applied.insert(w.addr, w.i);
                        }
                    }
                    job.open_cols -= 1;
                    job.writes_outstanding += 1;
                    self.pending_writes.push_back((col.line, col.h, col.job));
                }
                IndKind::Rmw { op, ts2 } => {
                    for w in &col.words {
                        let old = mem.read(job.dtype, w.addr);
                        let new = value::alu(op, job.dtype, old, spd.tile(ts2).get(w.i));
                        mem.write(job.dtype, w.addr, new);
                    }
                    job.open_cols -= 1;
                    job.writes_outstanding += 1;
                    self.pending_writes.push_back((col.line, col.h, col.job));
                }
            }
            if job.done() {
                retired.push(job.d.handle);
            }
            let _ = stats;
        }
        // Drop retired jobs from the queue.
        for h in &retired {
            if let Some(pos) = self.jobs.iter().position(|j| j.d.handle == *h) {
                self.jobs.remove(pos);
            }
        }
        retired
    }

    /// Checks whether a load job with no remaining work can retire even
    /// without a final response (e.g. fully condition-gated tiles).
    pub fn poll_retired(&mut self) -> Vec<u64> {
        let mut retired = Vec::new();
        while let Some(job) = self.jobs.front() {
            if job.done() {
                retired.push(job.d.handle);
                self.jobs.pop_front();
            } else {
                break;
            }
        }
        retired
    }

    fn remove_col(&mut self, slice_idx: usize, col_id: u64) -> Option<ColEntry> {
        let slice = &mut self.slices[slice_idx];
        for r_idx in 0..slice.rows.len() {
            if let Some(c_idx) = slice.rows[r_idx]
                .cols
                .iter()
                .position(|c| col_matches(c, col_id))
            {
                let col = slice.rows[r_idx].cols.remove(c_idx);
                self.buffered_cols -= 1;
                if slice.rows[r_idx].cols.is_empty() {
                    slice.rows.remove(r_idx);
                }
                if let Some(owner) = self.line_owners.get_mut(&col.line) {
                    owner.1 -= 1;
                    if owner.1 == 0 {
                        self.line_owners.remove(&col.line);
                    }
                }
                return Some(col);
            }
        }
        None
    }
}

#[inline]
fn col_matches(c: &ColEntry, id: u64) -> bool {
    c.id == id
}

/// The first sendable, unsent column id in `row` of `slice`.
fn find_unsent(slice: &Slice, row: u64) -> Option<u64> {
    slice
        .rows
        .iter()
        .filter(|r| r.row == row)
        .flat_map(|r| r.cols.iter())
        .find(|c| c.sendable && !c.sent)
        .map(|c| c.id)
}
