//! The timed DX100 engine: Figure 2(b) assembled — controller/scoreboard,
//! stream unit, indirect unit, ALU, range fuser, TLB, coherency agent — and
//! clocked against the memory system through [`MemPorts`].

use std::collections::{HashMap, HashSet, VecDeque};

use dx100_common::flags::FlagId;
use dx100_common::{Addr, Cycle, LineAddr, ReqId, SpanTracker, TraceHandle, CACHE_LINE_BYTES};
use dx100_dram::{AddrMap, DramConfig, Organization};

use crate::alu_unit::AluUnit;
use crate::config::Dx100Config;
use crate::controller::{unit_of, Controller, DispatchedInstr, Unit};
use crate::functional::ExecError;
use crate::indirect::IndirectUnit;
use crate::isa::{Instruction, RegId, TileId};
use crate::memimg::MemoryImage;
use crate::ports::MemPorts;
use crate::profile::EngineProfile;
use crate::range_fuser::RangeFuser;
use crate::regfile::RegFile;
use crate::scratchpad::{Scratchpad, Tile};
use crate::stats::Dx100Stats;
use crate::stream_unit::StreamUnit;
use crate::tlb::Tlb;

/// Base virtual address of the memory-mapped scratchpad data region
/// (Figure 6). Tiles are laid out contiguously, 8 bytes per element.
pub const SPD_REGION_BASE: Addr = 0x4000_0000_0000;

/// Bytes per scratchpad element in the memory-mapped view.
pub const SPD_ELEM_BYTES: u64 = 8;

/// Which unit owns an in-flight request id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitTag {
    /// Stream unit line (read or write).
    Stream,
    /// Indirect unit line read.
    IndirectRead,
    /// Indirect unit write-back.
    IndirectWrite,
}

/// Request-id allocator + response router shared by the units.
#[derive(Clone, Debug, Default)]
pub struct IdAlloc {
    next: ReqId,
    routes: HashMap<ReqId, UnitTag>,
}

impl IdAlloc {
    /// Allocates an id routed to `tag`.
    pub fn alloc(&mut self, tag: UnitTag) -> ReqId {
        let id = self.next;
        self.next += 1;
        self.routes.insert(id, tag);
        id
    }

    /// Cancels an id whose request was refused (buffer full).
    pub fn cancel(&mut self, id: ReqId) {
        self.routes.remove(&id);
    }

    /// Resolves and removes the route for a completed id.
    pub fn take_route(&mut self, id: ReqId) -> Option<UnitTag> {
        self.routes.remove(&id)
    }

    /// Outstanding routed requests.
    pub fn outstanding(&self) -> usize {
        self.routes.len()
    }
}

/// The timed DX100 accelerator instance.
#[derive(Clone, Debug)]
pub struct Dx100Engine {
    cfg: Dx100Config,
    spd: Scratchpad,
    regs: RegFile,
    controller: Controller,
    stream: StreamUnit,
    indirect: IndirectUnit,
    alu: AluUnit,
    range: RangeFuser,
    tlb: Tlb,
    ids: IdAlloc,
    resp_inbox: VecDeque<ReqId>,
    retired: Vec<(u64, Option<FlagId>)>,
    /// Scratchpad lines the cores have cached (coherency agent V bits).
    spd_cached: HashSet<LineAddr>,
    stats: Dx100Stats,
    next_handle: u64,
    halted: Option<ExecError>,
    spd_base: Addr,
    /// Event sink for tile-phase tracing (`None` = tracing disabled).
    trace: Option<TraceHandle>,
    /// One tracker per phase in [`PHASE_NAMES`] order.
    phase_spans: [SpanTracker; 3],
    /// `(fill, issue)` activity counters at the previous tick.
    prev_phase_counts: [u64; 2],
    /// Cycle attribution (`None` = profiling disabled). Lives outside
    /// [`Dx100Stats`] so RunStats stay byte-identical with profiling on.
    profile: Option<EngineProfile>,
}

/// Tile phases traced per engine, in `phase_spans` order: index fetch +
/// snoop (`fill`), coalesced line issue (`issue`), response write-back
/// (`drain`).
const PHASE_NAMES: [&str; 3] = ["fill", "issue", "drain"];

impl dx100_common::Checkpoint for Dx100Engine {
    type State = Dx100Engine;

    fn save(&self) -> Result<Self::State, dx100_common::CheckpointError> {
        Ok(self.clone())
    }

    fn restore(&mut self, state: &Self::State) {
        *self = state.clone();
    }
}

impl Dx100Engine {
    /// Builds an engine whose Row Table mirrors `dram`'s bank geometry.
    pub fn new(cfg: Dx100Config, dram: &DramConfig) -> Self {
        Self::with_geometry(cfg, dram.organization.clone(), dram.addr_map)
    }

    /// Builds an engine for an explicit DRAM organization and mapping.
    pub fn with_geometry(cfg: Dx100Config, org: Organization, map: AddrMap) -> Self {
        Dx100Engine {
            spd: Scratchpad::new(cfg.num_tiles, cfg.tile_elems),
            regs: RegFile::new(),
            controller: Controller::new(),
            stream: StreamUnit::new(cfg.stream_rate, cfg.request_table_entries),
            indirect: IndirectUnit::new(cfg.clone(), org, map),
            alu: AluUnit::new(cfg.alu_lanes),
            range: RangeFuser::new(cfg.range_rate),
            tlb: Tlb::new(cfg.tlb_entries),
            ids: IdAlloc::default(),
            resp_inbox: VecDeque::new(),
            retired: Vec::new(),
            spd_cached: HashSet::new(),
            stats: Dx100Stats::default(),
            next_handle: 0,
            halted: None,
            spd_base: SPD_REGION_BASE,
            trace: None,
            phase_spans: [SpanTracker::default(); 3],
            prev_phase_counts: [0; 2],
            profile: None,
            cfg,
        }
    }

    /// Turns on cycle attribution for this engine.
    pub fn enable_profile(&mut self) {
        self.profile = Some(EngineProfile::default());
    }

    /// The attribution profile, when profiling is enabled.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.profile.as_ref()
    }

    /// Attaches an event sink; contiguous stretches of tile-phase activity
    /// (`fill`, `issue`, `drain`) become `dx100` spans.
    pub fn set_trace(&mut self, handle: TraceHandle) {
        self.trace = Some(handle);
    }

    /// Closes any phase span still open at end of run.
    pub fn finish_trace(&mut self, now: Cycle) {
        if let Some(t) = self.trace.clone() {
            for (i, name) in PHASE_NAMES.iter().enumerate() {
                self.phase_spans[i].finish(now, &t, "dx100", name);
            }
        }
    }

    /// Relocates this instance's memory-mapped scratchpad region (multiple
    /// DX100 instances occupy disjoint regions).
    pub fn set_spd_base(&mut self, base: Addr) {
        self.spd_base = base;
    }

    /// The configuration in use.
    pub fn config(&self) -> &Dx100Config {
        &self.cfg
    }

    /// Writes a scalar register (core MMIO store to the RF region).
    pub fn write_reg(&mut self, id: RegId, v: u64) {
        self.regs.write(id, v);
    }

    /// Reads a scalar register.
    pub fn read_reg(&self, id: RegId) -> u64 {
        self.regs.read(id)
    }

    /// Writes a whole tile from the host side.
    pub fn write_tile(&mut self, id: TileId, values: &[u64]) {
        self.spd.write_tile(id, values);
    }

    /// Shared view of a tile.
    pub fn tile(&self, id: TileId) -> &Tile {
        self.spd.tile(id)
    }

    /// Transfers PTEs covering `[base, base+size)` to the accelerator TLB
    /// (the once-per-application setup API of Section 3.6).
    pub fn preload_ptes(&mut self, base: Addr, size: u64) {
        self.tlb.preload_range(base, size);
    }

    /// Memory-mapped address of element `i` of `tile` in the scratchpad
    /// data region (what cores load when consuming gathered data).
    pub fn tile_elem_addr(&self, tile: TileId, i: usize) -> Addr {
        self.spd_base
            + (tile.index() * self.cfg.tile_elems) as u64 * SPD_ELEM_BYTES
            + i as u64 * SPD_ELEM_BYTES
    }

    /// Whether `addr` falls inside the scratchpad data region.
    pub fn is_spd_addr(&self, addr: Addr) -> bool {
        addr >= self.spd_base
            && addr
                < self.spd_base + (self.cfg.num_tiles * self.cfg.tile_elems) as u64 * SPD_ELEM_BYTES
    }

    /// Records that the cores cached a scratchpad line (coherency agent V
    /// bit). The glue calls this when serving SPD-region fills.
    pub fn note_spd_cached(&mut self, line: LineAddr) {
        self.spd_cached.insert(line);
    }

    /// Submits an instruction with its register operands resolved now.
    /// `flag` is set on the flag board when the instruction retires.
    ///
    /// # Errors
    /// Rejects ISA-illegal instructions.
    pub fn push_instruction(
        &mut self,
        instr: Instruction,
        flag: Option<FlagId>,
    ) -> Result<u64, ExecError> {
        instr.validate()?;
        let handle = self.next_handle;
        self.next_handle += 1;
        let (r1, r2, r3) = match instr {
            Instruction::Sld { rs1, rs2, rs3, .. } | Instruction::Sst { rs1, rs2, rs3, .. } => (
                self.regs.read(rs1),
                self.regs.read(rs2),
                self.regs.read(rs3),
            ),
            Instruction::Alus { rs, .. } => (self.regs.read(rs), 0, 0),
            Instruction::Rng { rs1, .. } => (self.regs.read(rs1), 0, 0),
            _ => (0, 0, 0),
        };
        self.controller.receive(DispatchedInstr {
            handle,
            instr,
            r1,
            r2,
            r3,
            flag,
        });
        Ok(handle)
    }

    /// Submits an instruction from its 192-bit wire encoding.
    ///
    /// # Errors
    /// Rejects undecodable or illegal encodings.
    pub fn push_encoded(
        &mut self,
        words: [u64; 3],
        flag: Option<FlagId>,
    ) -> Result<u64, ExecError> {
        let instr = Instruction::decode(words)?;
        self.push_instruction(instr, flag)
    }

    /// Delivers a memory completion from the system glue.
    pub fn mem_response(&mut self, id: ReqId) {
        self.resp_inbox.push_back(id);
    }

    /// Instructions that retired since the last drain: `(handle, flag)`.
    pub fn drain_retired(&mut self) -> Vec<(u64, Option<FlagId>)> {
        std::mem::take(&mut self.retired)
    }

    /// Whether every queue and unit is empty.
    pub fn is_idle(&self) -> bool {
        self.controller.is_idle()
            && self.stream.is_idle()
            && self.indirect.is_idle()
            && self.alu.is_idle()
            && self.range.is_idle()
            && self.resp_inbox.is_empty()
    }

    /// Diagnostic summary of queue occupancy.
    pub fn debug_state(&self) -> String {
        format!(
            "ctl(q={} infl={}) stream_idle={} indirect[{}] alu_idle={} rng_idle={} inbox={}",
            self.controller.queued(),
            self.controller.in_flight(),
            self.stream.is_idle(),
            self.indirect.debug_state(),
            self.alu.is_idle(),
            self.range.is_idle(),
            self.resp_inbox.len()
        )
    }

    /// Engine statistics.
    pub fn stats(&self) -> &Dx100Stats {
        &self.stats
    }

    /// Clears statistics (ROI boundary).
    pub fn reset_stats(&mut self) {
        self.stats = Dx100Stats::default();
        self.prev_phase_counts = [0; 2];
        if self.profile.is_some() {
            self.profile = Some(EngineProfile::default());
        }
    }

    /// Row Table occupancy: buffered column entries awaiting issue.
    pub fn queue_depth(&self) -> usize {
        self.indirect.buffered_columns()
    }

    /// TLB statistics `(hits, misses)`.
    pub fn tlb_stats(&self) -> (u64, u64) {
        (self.tlb.hits(), self.tlb.misses())
    }

    /// A runtime error that halted the engine, if any.
    pub fn error(&self) -> Option<ExecError> {
        self.halted
    }

    /// Whether the next `tick` would change no state other than re-running
    /// the phase-span trace update with frozen counters (which
    /// [`Self::credit_idle_span`] replays exactly for a skipped span).
    pub fn quiescent(&self, now: Cycle) -> bool {
        if self.halted.is_some() {
            return true; // tick returns immediately
        }
        self.resp_inbox.is_empty()
            && self.retired.is_empty()
            && !self.controller.dispatchable()
            && self.stream.quiescent(&self.spd)
            && self.indirect.quiescent(now, &self.spd)
            && self.alu.quiescent(&self.spd)
            && self.range.quiescent(&self.spd)
    }

    /// Earliest cycle ≥ `now` at which `tick` might not be a pure no-op, or
    /// `None` when the engine wakes only on external input (a memory
    /// response or a newly received instruction).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.halted.is_some() {
            return None;
        }
        if !self.quiescent(now) {
            return Some(now);
        }
        self.indirect.next_time_event(now)
    }

    /// Replays the per-tick phase-span trace update for a quiescent span
    /// `[from, to)`. With frozen counters the update is edge-triggered: the
    /// first tick may open or close spans (counter deltas versus the last
    /// active tick), and every later tick sees zero deltas — so one update
    /// at `from` plus one at `from + 1` reproduces the whole span.
    pub fn credit_idle_span(&mut self, from: Cycle, to: Cycle) {
        let n = to - from;
        if self.halted.is_some() {
            if let Some(p) = &mut self.profile {
                p.halted += n;
            }
            return;
        }
        // Attribution: the span is quiescent by certificate, so the
        // classification a per-cycle tick would compute is frozen — one
        // batched credit is bit-identical to `n` ticks.
        let outstanding = self.ids.outstanding();
        let depth = self.indirect.buffered_columns() as u64;
        let draining = self.indirect.pending_responses() > 0;
        if let Some(p) = &mut self.profile {
            p.row_table_depth.record_n(depth, n);
            if outstanding > 0 {
                p.wait_mem += n;
            } else {
                p.idle += n;
            }
            if draining {
                p.drain_ticks += n;
            }
        }
        let Some(t) = self.trace.clone() else {
            return;
        };
        let cur = [
            self.stats.snoop_hits + self.stats.snoop_misses,
            self.stats.indirect_line_reads + self.stats.indirect_line_writes,
        ];
        let drain = self.indirect.pending_responses() > 0;
        let first = [
            cur[0] > self.prev_phase_counts[0],
            cur[1] > self.prev_phase_counts[1],
            drain,
        ];
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            self.phase_spans[i].update(first[i], from, &t, "dx100", name);
        }
        self.prev_phase_counts = cur;
        if to > from + 1 {
            let rest = [false, false, drain];
            for (i, name) in PHASE_NAMES.iter().enumerate() {
                self.phase_spans[i].update(rest[i], from + 1, &t, "dx100", name);
            }
        }
    }

    /// Advances one CPU cycle.
    pub fn tick(&mut self, now: Cycle, mem: &mut MemoryImage, ports: &mut dyn MemPorts) {
        if self.halted.is_some() {
            if let Some(p) = &mut self.profile {
                p.halted += 1;
            }
            return;
        }
        // Cycle attribution: classify before any state changes so the
        // class matches what `credit_idle_span` computes for a skipped
        // span (whose inputs are exactly this pre-tick state).
        if self.profile.is_some() {
            self.classify_tick(now);
        }
        let mut retired: Vec<u64> = Vec::new();

        // 1. Route completed memory requests.
        while let Some(id) = self.resp_inbox.pop_front() {
            match self.ids.take_route(id) {
                Some(UnitTag::Stream) => {
                    if let Some(h) = self.stream.on_response(id, &mut self.spd, mem) {
                        retired.push(h);
                    }
                }
                Some(UnitTag::IndirectRead) | Some(UnitTag::IndirectWrite) => {
                    self.indirect.push_response(id);
                }
                None => debug_assert!(false, "response for unrouted id {id}"),
            }
        }

        // 2. Dispatch (up to two instructions per cycle).
        for _ in 0..2 {
            let Some(d) = self.controller.try_dispatch() else {
                break;
            };
            // Coherency agent: invalidate any host-cached scratchpad lines
            // of the instruction's tiles.
            let mut tiles = d.instr.dest_tiles();
            tiles.extend(d.instr.source_tiles());
            for t in &tiles {
                self.invalidate_tile_lines(*t, ports);
            }
            for t in d.instr.dest_tiles() {
                self.spd.begin_produce_unsized(t);
            }
            match unit_of(&d.instr) {
                Unit::Stream => self.stream.enqueue(d),
                Unit::Indirect => self.indirect.enqueue(d),
                Unit::Alu => self.alu.enqueue(d),
                Unit::Range => self.range.enqueue(d),
            }
        }

        // 3. Unit pipelines.
        if let Some(h) = self.stream.step(
            now,
            &mut self.spd,
            mem,
            ports,
            &mut self.ids,
            &mut self.stats,
        ) {
            retired.push(h);
        }
        self.indirect
            .fill_step(now, &mut self.spd, ports, &mut self.tlb, &mut self.stats);
        self.indirect
            .request_step(now, ports, &mut self.ids, &mut self.stats, 4);
        retired.extend(
            self.indirect
                .response_step(&mut self.spd, mem, &mut self.stats),
        );
        retired.extend(self.indirect.poll_retired());
        match self.alu.step(&mut self.spd) {
            Ok(Some(h)) => retired.push(h),
            Ok(None) => {}
            Err(e) => {
                self.halted = Some(e);
                return;
            }
        }
        match self.range.step(&mut self.spd) {
            Ok(Some(h)) => retired.push(h),
            Ok(None) => {}
            Err(e) => {
                self.halted = Some(e);
                return;
            }
        }

        // 4. Retire.
        for h in retired {
            let (dests, flag) = self.controller.retire(h);
            for d in dests {
                self.spd.set_ready(d);
            }
            self.retired.push((h, flag));
            self.stats.instructions_retired += 1;
        }

        // 5. Tile-phase activity: fill/issue from counter deltas, drain
        //    from outstanding indirect responses. Feeds both the trace
        //    spans and the profiled phase-residency counters.
        if self.trace.is_some() || self.profile.is_some() {
            let cur = [
                self.stats.snoop_hits + self.stats.snoop_misses,
                self.stats.indirect_line_reads + self.stats.indirect_line_writes,
            ];
            let active = [
                cur[0] > self.prev_phase_counts[0],
                cur[1] > self.prev_phase_counts[1],
                self.indirect.pending_responses() > 0,
            ];
            if let Some(p) = &mut self.profile {
                p.fill_ticks += active[0] as u64;
                p.issue_ticks += active[1] as u64;
                p.drain_ticks += active[2] as u64;
            }
            if let Some(t) = self.trace.clone() {
                for (i, name) in PHASE_NAMES.iter().enumerate() {
                    self.phase_spans[i].update(active[i], now, &t, "dx100", name);
                }
            }
            self.prev_phase_counts = cur;
        }
    }

    /// Computes this tick's attribution class from the pre-tick state: the
    /// same per-unit quiescence predicates [`Dx100Engine::quiescent`] uses,
    /// so elided spans and real ticks classify identically.
    fn classify_tick(&mut self, now: Cycle) {
        let stream_q = self.stream.quiescent(&self.spd);
        let indirect_q = self.indirect.quiescent(now, &self.spd);
        let alu_q = self.alu.quiescent(&self.spd);
        let range_q = self.range.quiescent(&self.spd);
        let quiesc = self.resp_inbox.is_empty()
            && self.retired.is_empty()
            && !self.controller.dispatchable()
            && stream_q
            && indirect_q
            && alu_q
            && range_q;
        let outstanding = self.ids.outstanding();
        let depth = self.indirect.buffered_columns() as u64;
        let p = self.profile.as_mut().expect("caller checked");
        p.row_table_depth.record(depth);
        p.stream_busy += !stream_q as u64;
        p.indirect_busy += !indirect_q as u64;
        p.alu_busy += !alu_q as u64;
        p.range_busy += !range_q as u64;
        if !quiesc {
            p.active += 1;
        } else if outstanding > 0 {
            p.wait_mem += 1;
        } else {
            p.idle += 1;
        }
    }

    fn invalidate_tile_lines(&mut self, tile: TileId, ports: &mut dyn MemPorts) {
        if self.spd_cached.is_empty() {
            return;
        }
        let start = self.tile_elem_addr(tile, 0);
        let end = start + self.cfg.tile_elems as u64 * SPD_ELEM_BYTES;
        let first = LineAddr::containing(start);
        let last = LineAddr::containing(end - 1);
        // Only touch lines the coherency agent knows are cached (V bits).
        let cached: Vec<LineAddr> = self
            .spd_cached
            .iter()
            .copied()
            .filter(|l| (first..=last).contains(l))
            .collect();
        for line in cached {
            ports.invalidate(line);
            self.spd_cached.remove(&line);
            self.stats.coherency_invalidations += 1;
        }
    }

    /// Elements per tile and line count per tile (diagnostics).
    pub fn tile_lines(&self) -> u64 {
        self.cfg.tile_elems as u64 * SPD_ELEM_BYTES / CACHE_LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::FunctionalDx100;
    use crate::ports::TestPorts;
    use dx100_common::{AluOp, DType};

    const T0: TileId = TileId::new(0);
    const T1: TileId = TileId::new(1);
    const T2: TileId = TileId::new(2);
    const T3: TileId = TileId::new(3);
    const R0: RegId = RegId::new(0);
    const R1: RegId = RegId::new(1);
    const R2: RegId = RegId::new(2);

    fn small_cfg() -> Dx100Config {
        let mut cfg = Dx100Config::paper();
        cfg.tile_elems = 256;
        cfg
    }

    fn run_engine(
        engine: &mut Dx100Engine,
        mem: &mut MemoryImage,
        ports: &mut TestPorts,
        max_cycles: Cycle,
    ) {
        for now in 0..max_cycles {
            while let Some(id) = ports.pop_ready(now) {
                engine.mem_response(id);
            }
            engine.tick(now, mem, ports);
            if let Some(e) = engine.error() {
                panic!("engine halted: {e}");
            }
            if engine.is_idle() {
                return;
            }
        }
        panic!("engine did not drain in {max_cycles} cycles");
    }

    /// End-to-end gather: SLD indices, ILD values; compare with functional.
    #[test]
    fn timed_gather_matches_functional() {
        let dram = DramConfig::ddr4_3200_2ch();
        let mut mem = MemoryImage::new();
        let a = mem.alloc("A", DType::U32, 4096);
        let b = mem.alloc("B", DType::U32, 128);
        for i in 0..4096 {
            mem.write_elem(a, i, i.wrapping_mul(2654435761) & 0xffff);
        }
        for i in 0..128 {
            mem.write_elem(b, i, (i * 97 + 13) % 4096);
        }
        let program = [
            Instruction::sld(DType::U32, b.base(), T0, R0, R1, R2),
            Instruction::ild(DType::U32, a.base(), T1, T0),
        ];

        // Functional reference.
        let mut fx = FunctionalDx100::new(small_cfg());
        fx.write_reg(R0, 0);
        fx.write_reg(R1, 1);
        fx.write_reg(R2, 128);
        let mut fmem_expect: Vec<u64> = Vec::new();
        {
            let mut mem2 = MemoryImage::new();
            let a2 = mem2.alloc("A", DType::U32, 4096);
            let b2 = mem2.alloc("B", DType::U32, 128);
            for i in 0..4096 {
                mem2.write_elem(a2, i, i.wrapping_mul(2654435761) & 0xffff);
            }
            for i in 0..128 {
                mem2.write_elem(b2, i, (i * 97 + 13) % 4096);
            }
            let prog2 = [
                Instruction::sld(DType::U32, b2.base(), T0, R0, R1, R2),
                Instruction::ild(DType::U32, a2.base(), T1, T0),
            ];
            fx.run(&prog2, &mut mem2).unwrap();
            fmem_expect.extend_from_slice(fx.tile(T1).valid());
        }

        // Timed engine.
        let mut engine = Dx100Engine::new(small_cfg(), &dram);
        engine.preload_ptes(0, mem.high_water());
        engine.write_reg(R0, 0);
        engine.write_reg(R1, 1);
        engine.write_reg(R2, 128);
        for instr in program {
            engine.push_instruction(instr, None).unwrap();
        }
        let mut ports = TestPorts::new(30);
        run_engine(&mut engine, &mut mem, &mut ports, 50_000);
        assert_eq!(engine.tile(T1).valid(), &fmem_expect[..]);
        assert_eq!(engine.stats().instructions_retired, 2);
        // Coalescing: 128 gathered words over 4096×4B = far fewer lines
        // than words.
        assert!(engine.stats().indirect_line_reads <= 128);
    }

    #[test]
    fn timed_scatter_rmw_matches_functional() {
        let dram = DramConfig::ddr4_3200_2ch();
        let make_mem = || {
            let mut mem = MemoryImage::new();
            let a = mem.alloc("A", DType::U32, 512);
            (mem, a)
        };
        let (mut mem, a) = make_mem();
        let idx: Vec<u64> = (0..64).map(|i| (i * 31 + 7) % 512).collect();
        let vals: Vec<u64> = (0..64).map(|i| i + 1000).collect();

        // Functional.
        let (mut fmem, fa) = make_mem();
        let mut fx = FunctionalDx100::new(small_cfg());
        fx.write_tile(T0, &idx);
        fx.write_tile(T1, &vals);
        fx.run(
            &[
                Instruction::ist(DType::U32, fa.base(), T0, T1),
                Instruction::irmw(DType::U32, AluOp::Add, fa.base(), T0, T1),
            ],
            &mut fmem,
        )
        .unwrap();

        // Timed.
        let mut engine = Dx100Engine::new(small_cfg(), &dram);
        engine.preload_ptes(0, mem.high_water());
        engine.write_tile(T0, &idx);
        engine.write_tile(T1, &vals);
        engine
            .push_instruction(Instruction::ist(DType::U32, a.base(), T0, T1), None)
            .unwrap();
        engine
            .push_instruction(
                Instruction::irmw(DType::U32, AluOp::Add, a.base(), T0, T1),
                None,
            )
            .unwrap();
        let mut ports = TestPorts::new(25);
        run_engine(&mut engine, &mut mem, &mut ports, 100_000);
        assert_eq!(mem.to_vec(a), fmem.to_vec(fa));
        assert!(engine.stats().indirect_line_writes > 0);
    }

    #[test]
    fn full_pipeline_with_alu_condition_and_range() {
        // Conditional gather over fused ranges:
        //   bounds lo[k]=k*4, hi[k]=k*4+3; cond = (k % 2 == 0) via ALU.
        let dram = DramConfig::ddr4_3200_2ch();
        let mut mem = MemoryImage::new();
        let a = mem.alloc("A", DType::U32, 256);
        for i in 0..256 {
            mem.write_elem(a, i, 7000 + i);
        }
        let lows: Vec<u64> = (0..16u64).map(|k| k * 4).collect();
        let highs: Vec<u64> = (0..16u64).map(|k| k * 4 + 3).collect();

        let mut engine = Dx100Engine::new(small_cfg(), &dram);
        engine.preload_ptes(0, mem.high_water());
        engine.write_tile(T0, &lows);
        engine.write_tile(T1, &highs);
        engine.write_reg(R0, 256); // range budget
        engine
            .push_instruction(
                Instruction::Rng {
                    td1: T2,
                    td2: T3,
                    ts1: T0,
                    ts2: T1,
                    rs1: R0,
                    tc: None,
                },
                None,
            )
            .unwrap();
        // Gather A[j] for every fused j.
        let t4 = TileId::new(4);
        engine
            .push_instruction(Instruction::ild(DType::U32, a.base(), t4, T3), None)
            .unwrap();
        let mut ports = TestPorts::new(20);
        run_engine(&mut engine, &mut mem, &mut ports, 100_000);
        // 16 ranges × 3 elements.
        assert_eq!(engine.tile(t4).len(), Some(48));
        assert_eq!(engine.tile(t4).get(0), 7000);
        assert_eq!(engine.tile(t4).get(3), 7004); // k=1: j=4
        assert_eq!(engine.tile(t4).get(47), 7062); // k=15: j=62
    }

    #[test]
    fn dram_backpressure_stalls_but_completes() {
        let dram = DramConfig::ddr4_3200_2ch();
        let mut mem = MemoryImage::new();
        let a = mem.alloc("A", DType::U32, 2048);
        let idx: Vec<u64> = (0..64).map(|i| (i * 131) % 2048).collect();
        let mut engine = Dx100Engine::new(small_cfg(), &dram);
        engine.preload_ptes(0, mem.high_water());
        engine.write_tile(T0, &idx);
        engine
            .push_instruction(Instruction::ild(DType::U32, a.base(), T1, T0), None)
            .unwrap();
        let mut ports = TestPorts::new(20);
        ports.dram_refusals = 50;
        run_engine(&mut engine, &mut mem, &mut ports, 100_000);
        assert!(engine.stats().reqbuf_stall_cycles > 0);
        assert_eq!(engine.tile(T1).len(), Some(64));
    }

    #[test]
    fn snooped_lines_route_to_llc() {
        let dram = DramConfig::ddr4_3200_2ch();
        let mut mem = MemoryImage::new();
        let a = mem.alloc("A", DType::U32, 1024);
        let idx: Vec<u64> = (0..32).collect();
        let mut engine = Dx100Engine::new(small_cfg(), &dram);
        engine.preload_ptes(0, mem.high_water());
        engine.write_tile(T0, &idx);
        let mut ports = TestPorts::new(15);
        // Pretend the cores have the first line of A cached.
        ports.cached.insert(LineAddr::containing(a.base()));
        engine
            .push_instruction(Instruction::ild(DType::U32, a.base(), T1, T0), None)
            .unwrap();
        run_engine(&mut engine, &mut mem, &mut ports, 50_000);
        let llc_reqs: Vec<_> = ports
            .issued
            .iter()
            .filter(|(_, _, _, dram)| !dram)
            .collect();
        let dram_reqs: Vec<_> = ports
            .issued
            .iter()
            .filter(|(_, _, _, dram)| *dram)
            .collect();
        assert_eq!(llc_reqs.len(), 1, "cached line must go through the LLC");
        assert_eq!(dram_reqs.len(), 1, "uncached line goes direct to DRAM");
        assert_eq!(engine.stats().snoop_hits, 1);
    }

    /// The MECE split must cover every tick the engine was driven, and the
    /// utilization/phase counters must see the gather's unit activity.
    #[test]
    fn profile_attribution_is_mece() {
        let dram = DramConfig::ddr4_3200_2ch();
        let mut mem = MemoryImage::new();
        let a = mem.alloc("A", DType::U32, 2048);
        let idx: Vec<u64> = (0..64).map(|i| (i * 131) % 2048).collect();
        let mut engine = Dx100Engine::new(small_cfg(), &dram);
        engine.enable_profile();
        engine.preload_ptes(0, mem.high_water());
        engine.write_tile(T0, &idx);
        engine
            .push_instruction(Instruction::ild(DType::U32, a.base(), T1, T0), None)
            .unwrap();
        let mut ports = TestPorts::new(30);
        let mut ticks = 0u64;
        for now in 0..100_000 {
            while let Some(id) = ports.pop_ready(now) {
                engine.mem_response(id);
            }
            engine.tick(now, &mut mem, &mut ports);
            ticks += 1;
            if engine.is_idle() {
                break;
            }
        }
        let p = engine.profile().unwrap().clone();
        assert_eq!(p.attributed(), ticks, "every tick lands in one bucket");
        assert!(p.active > 0 && p.wait_mem > 0, "gather stalls on memory");
        assert!(p.indirect_busy > 0, "indirect unit did the gather");
        assert!(p.fill_ticks > 0 && p.issue_ticks > 0 && p.drain_ticks > 0);
        assert!(p.row_table_depth.total() == ticks);
    }

    #[test]
    fn encoded_instruction_round_trip_executes() {
        let dram = DramConfig::ddr4_3200_2ch();
        let mut mem = MemoryImage::new();
        let a = mem.alloc("A", DType::U32, 64);
        for i in 0..64 {
            mem.write_elem(a, i, i + 5);
        }
        let mut engine = Dx100Engine::new(small_cfg(), &dram);
        engine.preload_ptes(0, mem.high_water());
        engine.write_tile(T0, &[3, 1, 4, 1, 5]);
        let words = Instruction::ild(DType::U32, a.base(), T1, T0).encode();
        engine.push_encoded(words, None).unwrap();
        let mut ports = TestPorts::new(10);
        run_engine(&mut engine, &mut mem, &mut ports, 10_000);
        assert_eq!(engine.tile(T1).valid(), &[8, 6, 9, 6, 10]);
    }
}
