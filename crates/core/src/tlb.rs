//! DX100's small TLB for huge-page PTEs (paper Section 3.6).
//!
//! The paper assumes indirect/stream regions are mapped through 2 MB huge
//! pages whose PTEs are transferred to the accelerator once per application
//! via an API call; a 256-entry TLB then covers 512 MB of data. Misses are
//! possible for un-preloaded pages and stall the fill stage.

use std::collections::{HashSet, VecDeque};

use dx100_common::Addr;

/// Huge-page size (2 MB).
const PAGE_SHIFT: u32 = 21;

/// The accelerator's TLB, FIFO-replaced.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: HashSet<u64>,
    order: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` huge-page entries.
    pub fn new(capacity: usize) -> Self {
        Tlb {
            entries: HashSet::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Preloads PTEs covering `[base, base + size)` (the `transfer_pte` API;
    /// called once per array at setup).
    pub fn preload_range(&mut self, base: Addr, size: u64) {
        let first = base >> PAGE_SHIFT;
        let last = (base + size.max(1) - 1) >> PAGE_SHIFT;
        for page in first..=last {
            self.insert(page);
        }
    }

    /// Translates `addr` (identity mapping in this simulator). Returns
    /// `true` on a TLB hit; a miss inserts the entry (hardware page-walk)
    /// and returns `false` so the caller can charge the walk latency.
    pub fn lookup(&mut self, addr: Addr) -> bool {
        let page = addr >> PAGE_SHIFT;
        if self.entries.contains(&page) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.insert(page);
            false
        }
    }

    fn insert(&mut self, page: u64) {
        if self.entries.insert(page) {
            self.order.push_back(page);
            if self.order.len() > self.capacity {
                let evict = self.order.pop_front().unwrap();
                self.entries.remove(&evict);
            }
        }
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preloaded_range_hits() {
        let mut tlb = Tlb::new(256);
        tlb.preload_range(0, 8 << 21); // 8 huge pages
        assert!(tlb.lookup(0));
        assert!(tlb.lookup((7 << 21) + 12345));
        assert_eq!(tlb.misses(), 0);
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.lookup(0x4000_0000));
        assert!(tlb.lookup(0x4000_0000));
        assert_eq!(tlb.misses(), 1);
        assert_eq!(tlb.hits(), 1);
    }

    #[test]
    fn fifo_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.preload_range(0, 1); // page 0
        tlb.preload_range(1 << 21, 1); // page 1
        tlb.preload_range(2 << 21, 1); // page 2 evicts page 0
        assert!(!tlb.lookup(0));
        assert!(tlb.lookup(2 << 21));
    }
}
