//! The 2 MB scratchpad: 32 tiles of 16K elements, with the per-tile ready
//! bit and per-element finish bits that coordinate cores, functional units,
//! and fine-grained producer/consumer chaining (paper Section 3.5).

use crate::isa::TileId;

/// One scratchpad tile.
#[derive(Debug, Clone)]
pub struct Tile {
    data: Vec<u64>,
    finish: Vec<bool>,
    /// Valid element count, set by the producing instruction. `None` until a
    /// producer announces it (range-fuser outputs are only sized at
    /// completion).
    len: Option<usize>,
    /// Ready bit: the last instruction touching this tile has retired.
    ready: bool,
}

impl Tile {
    fn new(capacity: usize) -> Self {
        Tile {
            data: vec![0; capacity],
            finish: vec![false; capacity],
            len: None,
            ready: true,
        }
    }

    /// Raw element lanes (all `capacity` slots; only `len()` are valid).
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Valid element count, if announced.
    pub fn len(&self) -> Option<usize> {
        self.len
    }

    /// Whether the tile has an announced length of zero.
    pub fn is_empty(&self) -> bool {
        self.len == Some(0)
    }

    /// Ready bit (all producing instructions retired).
    pub fn ready(&self) -> bool {
        self.ready
    }

    /// Whether element `i` has been produced.
    pub fn finished(&self, i: usize) -> bool {
        self.finish[i]
    }

    /// Reads element `i`.
    ///
    /// # Panics
    /// Panics if `i` exceeds the tile capacity.
    pub fn get(&self, i: usize) -> u64 {
        self.data[i]
    }

    /// Valid elements as a slice.
    ///
    /// # Panics
    /// Panics if the length has not been announced.
    pub fn valid(&self) -> &[u64] {
        &self.data[..self.len.expect("tile length not announced")]
    }
}

/// The scratchpad: a fixed set of tiles.
#[derive(Clone, Debug)]
pub struct Scratchpad {
    tiles: Vec<Tile>,
    capacity: usize,
}

impl Scratchpad {
    /// Creates `num_tiles` tiles of `capacity` elements each.
    pub fn new(num_tiles: usize, capacity: usize) -> Self {
        Scratchpad {
            tiles: (0..num_tiles).map(|_| Tile::new(capacity)).collect(),
            capacity,
        }
    }

    /// Elements per tile.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Shared view of a tile.
    pub fn tile(&self, id: TileId) -> &Tile {
        &self.tiles[id.index()]
    }

    /// Announces the valid length of `id` (producer dispatch) and clears all
    /// finish bits up to that length.
    ///
    /// # Panics
    /// Panics if `len` exceeds the tile capacity.
    pub fn begin_produce(&mut self, id: TileId, len: usize) {
        assert!(
            len <= self.capacity,
            "tile overflow: {len} > {}",
            self.capacity
        );
        let t = &mut self.tiles[id.index()];
        t.len = Some(len);
        t.ready = false;
        for f in t.finish[..len].iter_mut() {
            *f = false;
        }
    }

    /// Marks a tile not-ready without announcing a length (range-fuser
    /// destinations, whose length is only known at completion).
    pub fn begin_produce_unsized(&mut self, id: TileId) {
        let t = &mut self.tiles[id.index()];
        t.len = None;
        t.ready = false;
        for f in t.finish.iter_mut() {
            *f = false;
        }
    }

    /// Writes element `i` of `id` and sets its finish bit.
    ///
    /// # Panics
    /// Panics if `i` exceeds capacity.
    pub fn produce(&mut self, id: TileId, i: usize, v: u64) {
        let t = &mut self.tiles[id.index()];
        t.data[i] = v;
        t.finish[i] = true;
    }

    /// Marks element `i` finished as a condition-skipped lane. Skipped lanes
    /// read as zero — deterministic across the functional and timed models
    /// (and what a hardware scratchpad with cleared destination tiles would
    /// produce).
    pub fn skip(&mut self, id: TileId, i: usize) {
        let t = &mut self.tiles[id.index()];
        t.data[i] = 0;
        t.finish[i] = true;
    }

    /// Announces the final length late (range-fuser completion).
    pub fn set_len(&mut self, id: TileId, len: usize) {
        assert!(len <= self.capacity);
        self.tiles[id.index()].len = Some(len);
    }

    /// Sets the ready bit (producing instruction retired).
    pub fn set_ready(&mut self, id: TileId) {
        self.tiles[id.index()].ready = true;
    }

    /// Writes an entire tile at once (functional model / core writes).
    ///
    /// # Panics
    /// Panics if `values.len()` exceeds capacity.
    pub fn write_tile(&mut self, id: TileId, values: &[u64]) {
        assert!(values.len() <= self.capacity);
        let t = &mut self.tiles[id.index()];
        t.data[..values.len()].copy_from_slice(values);
        for f in t.finish[..values.len()].iter_mut() {
            *f = true;
        }
        t.len = Some(values.len());
        t.ready = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_cycle() {
        let mut spd = Scratchpad::new(4, 16);
        let t = TileId::new(2);
        spd.begin_produce(t, 3);
        assert!(!spd.tile(t).ready());
        assert!(!spd.tile(t).finished(0));
        spd.produce(t, 0, 10);
        spd.produce(t, 2, 30);
        spd.skip(t, 1);
        assert!(spd.tile(t).finished(1));
        spd.set_ready(t);
        assert!(spd.tile(t).ready());
        assert_eq!(spd.tile(t).valid(), &[10, 0, 30]);
    }

    #[test]
    fn write_tile_bulk() {
        let mut spd = Scratchpad::new(2, 8);
        let t = TileId::new(0);
        spd.write_tile(t, &[1, 2, 3]);
        assert_eq!(spd.tile(t).len(), Some(3));
        assert!(spd.tile(t).ready());
        assert_eq!(spd.tile(t).valid(), &[1, 2, 3]);
    }

    #[test]
    fn unsized_then_late_len() {
        let mut spd = Scratchpad::new(2, 8);
        let t = TileId::new(1);
        spd.begin_produce_unsized(t);
        assert_eq!(spd.tile(t).len(), None);
        spd.produce(t, 0, 5);
        spd.set_len(t, 1);
        spd.set_ready(t);
        assert_eq!(spd.tile(t).valid(), &[5]);
    }

    #[test]
    #[should_panic(expected = "tile overflow")]
    fn overflow_rejected() {
        let mut spd = Scratchpad::new(1, 4);
        spd.begin_produce(TileId::new(0), 5);
    }
}
