//! The 32-entry scalar register file (loop bounds, strides, ALU scalars).

use crate::isa::RegId;

/// DX100's scalar register file.
#[derive(Debug, Clone)]
pub struct RegFile {
    regs: [u64; RegId::MAX as usize],
}

impl RegFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        RegFile {
            regs: [0; RegId::MAX as usize],
        }
    }

    /// Reads a register.
    pub fn read(&self, id: RegId) -> u64 {
        self.regs[id.index()]
    }

    /// Writes a register.
    pub fn write(&mut self, id: RegId, v: u64) {
        self.regs[id.index()] = v;
    }
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut rf = RegFile::new();
        assert_eq!(rf.read(RegId::new(5)), 0);
        rf.write(RegId::new(5), 42);
        assert_eq!(rf.read(RegId::new(5)), 42);
        assert_eq!(rf.read(RegId::new(6)), 0);
    }
}
